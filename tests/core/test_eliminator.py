"""Contention-eliminator control loop (Sec. V-D)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NodeConfig
from repro.core.eliminator import ContentionEliminator, EliminatorConfig

from tests.core.fakes import FakeContext


def _context(mba=True, capacity=128.0):
    cluster = Cluster(
        ClusterConfig(
            node_groups=(
                (1, NodeConfig(gpus=4, mem_bandwidth_gbps=capacity, mba_supported=mba)),
            )
        )
    )
    context = FakeContext(lambda job_id, cores: 0.9, cluster=cluster)
    return context, cluster.nodes[0]


def _setup_node(node, *, trainer_bw=10.0, heat_bw=100.0, trainer_util=0.5):
    node.allocate("trainer", 4, 1)
    node.register_memory_traffic("trainer", trainer_bw, is_cpu_job=False)
    node.set_gpu_utilization("trainer", trainer_util)
    node.allocate("heat", 8, 0)
    node.register_memory_traffic("heat", heat_bw, is_cpu_job=True)


class TestTriggerConditions:
    def test_throttles_hot_node_with_degraded_trainer(self):
        context, node = _context()
        _setup_node(node, trainer_util=0.5)  # expected 0.9, observed 0.5
        context.start_job("trainer", 4)
        eliminator = ContentionEliminator()
        eliminator.start(context)
        context.fire_next()
        assert context.throttled
        assert all(entry == ("heat", 0) for entry in context.throttled)
        assert eliminator.throttle_actions == 1

    def test_quiet_node_is_left_alone(self):
        context, node = _context()
        _setup_node(node, heat_bw=20.0, trainer_util=0.9)
        context.start_job("trainer", 4)
        eliminator = ContentionEliminator()
        eliminator.start(context)
        context.fire_next()
        assert context.throttled == []

    def test_hot_node_without_degradation_is_left_alone(self):
        """Pressure alone is not enough: the trainer must actually run
        below its quiet-node expectation."""
        context, node = _context()
        _setup_node(node, trainer_util=0.9)  # matches expectation
        context.start_job("trainer", 4)
        eliminator = ContentionEliminator()
        eliminator.start(context)
        context.fire_next()
        assert context.throttled == []

    def test_hot_node_without_trainers_is_left_alone(self):
        context, node = _context()
        node.allocate("heat", 8, 0)
        node.register_memory_traffic("heat", 120.0, is_cpu_job=True)
        eliminator = ContentionEliminator()
        eliminator.start(context)
        context.fire_next()
        assert context.throttled == []

    def test_gpu_jobs_are_never_victims(self):
        """Only CPU jobs are throttled (Sec. V-A note)."""
        context, node = _context()
        node.allocate("trainer", 4, 1)
        node.register_memory_traffic("trainer", 120.0, is_cpu_job=False)
        node.set_gpu_utilization("trainer", 0.2)
        context.start_job("trainer", 4)
        eliminator = ContentionEliminator()
        eliminator.start(context)
        context.fire_next()
        assert context.throttled == []
        assert context.halved == []


class TestFallback:
    def test_no_mba_halves_cores_instead(self):
        context, node = _context(mba=False)
        _setup_node(node, trainer_util=0.5)
        context.start_job("trainer", 4)
        eliminator = ContentionEliminator()
        eliminator.start(context)
        context.fire_next()
        assert context.halved == ["heat"]
        assert eliminator.halving_actions == 1


class TestVictimSelection:
    def test_picks_largest_granted_cpu_job(self):
        context, node = _context()
        node.allocate("trainer", 2, 1)
        node.register_memory_traffic("trainer", 10.0, is_cpu_job=False)
        node.set_gpu_utilization("trainer", 0.5)
        node.allocate("small", 2, 0)
        node.register_memory_traffic("small", 5.0, is_cpu_job=True)
        node.allocate("big", 8, 0)
        node.register_memory_traffic("big", 100.0, is_cpu_job=True)
        context.start_job("trainer", 2)
        eliminator = ContentionEliminator()
        eliminator.start(context)
        context.fire_next()
        assert context.throttled
        assert all(entry == ("big", 0) for entry in context.throttled)


class TestLoop:
    def test_rearms_every_interval(self):
        context, node = _context()
        eliminator = ContentionEliminator(
            config=EliminatorConfig(monitor_interval_s=30.0)
        )
        eliminator.start(context)
        context.fire_next()
        context.fire_next()
        assert context.now == pytest.approx(60.0)

    def test_disabled_never_arms(self):
        context, _ = _context()
        eliminator = ContentionEliminator(
            config=EliminatorConfig(enabled=False)
        )
        eliminator.start(context)
        assert context.events == []

    def test_start_is_idempotent(self):
        context, _ = _context()
        eliminator = ContentionEliminator()
        eliminator.start(context)
        eliminator.start(context)
        assert len(context.events) == 1

    def test_forget_job_clears_peak_memory(self):
        eliminator = ContentionEliminator()
        eliminator._peak_util["ghost"] = 0.9
        eliminator.forget_job("ghost")
        assert "ghost" not in eliminator._peak_util


class TestConfig:
    def test_threshold_default_is_75_percent(self):
        assert EliminatorConfig().bandwidth_threshold == 0.75

    def test_validation(self):
        with pytest.raises(ValueError):
            EliminatorConfig(bandwidth_threshold=0.0)
        with pytest.raises(ValueError):
            EliminatorConfig(monitor_interval_s=0.0)
        with pytest.raises(ValueError):
            EliminatorConfig(utilization_drop=-0.1)


class TestTelemetryStaleness:
    """During an MBM dropout the eliminator trusts recent samples and
    refuses to act on stale ones (the acceptance criterion: zero
    throttle/halving actions beyond the staleness window)."""

    def _hot_context(self):
        context, node = _context()
        _setup_node(node, trainer_util=0.5)  # hot node, degraded trainer
        context.start_job("trainer", 4)
        return context, node

    def test_stale_node_is_skipped_entirely(self):
        context, node = self._hot_context()
        node.bandwidth.begin_outage(float("inf"))  # never sampled, never up
        eliminator = ContentionEliminator()
        eliminator.start(context)
        context.fire_all(limit=5)
        assert context.throttled == []
        assert context.halved == []
        assert eliminator.throttle_actions == 0
        assert eliminator.halving_actions == 0
        assert eliminator.stale_skips == 5

    def test_stale_node_without_mba_takes_no_halvings_either(self):
        context, node = _context(mba=False)
        _setup_node(node, trainer_util=0.5)
        context.start_job("trainer", 4)
        node.bandwidth.begin_outage(float("inf"))
        eliminator = ContentionEliminator()
        eliminator.start(context)
        context.fire_all(limit=5)
        assert context.halved == []
        assert eliminator.halving_actions == 0

    def test_recent_sample_is_still_trusted_during_dropout(self):
        context, node = self._hot_context()
        eliminator = ContentionEliminator(
            config=EliminatorConfig(staleness_window_s=60.0)
        )
        eliminator.start(context)
        context.fire_next()  # t=30: telemetry up, sample taken, throttles
        assert eliminator.throttle_actions == 1
        node.bandwidth.begin_outage(float("inf"))
        context.fire_next()  # t=60: blind, but sample is 30 s old — trusted
        assert eliminator.stale_skips == 0
        context.fire_next()  # t=90: hits the inclusive 60 s boundary
        context.fire_next()  # t=120: 90 s old — beyond the window, skipped
        assert eliminator.stale_skips >= 1

    def test_throttling_resumes_when_telemetry_returns(self):
        context, node = self._hot_context()
        node.bandwidth.begin_outage(100.0)  # blind until t=100
        eliminator = ContentionEliminator()
        eliminator.start(context)
        context.fire_next()  # t=30
        context.fire_next()  # t=60
        context.fire_next()  # t=90
        assert eliminator.throttle_actions == 0
        context.fire_next()  # t=120: telemetry back
        assert eliminator.throttle_actions == 1


class TestStalenessBoundary:
    """The staleness window is inclusive: a sample aged *exactly*
    ``staleness_window_s`` is still trusted; one instant past it the node
    is skipped and ``stale_skips`` increments."""

    def _hot_context(self):
        context, node = _context()
        _setup_node(node, trainer_util=0.5)
        context.start_job("trainer", 4)
        return context, node

    def test_sample_aged_exactly_window_is_trusted(self):
        context, node = self._hot_context()
        eliminator = ContentionEliminator(
            config=EliminatorConfig(
                monitor_interval_s=60.0, staleness_window_s=60.0
            )
        )
        eliminator.start(context)
        context.fire_next()  # t=60: telemetry up, sample taken, throttles
        assert eliminator.throttle_actions == 1
        node.bandwidth.begin_outage(float("inf"))
        context.fire_next()  # t=120: sample age == 60.0 exactly — trusted
        assert eliminator.stale_skips == 0

    def test_one_instant_past_window_is_skipped(self):
        context, node = self._hot_context()
        eliminator = ContentionEliminator(
            config=EliminatorConfig(
                monitor_interval_s=60.0, staleness_window_s=59.999
            )
        )
        eliminator.start(context)
        context.fire_next()  # t=60: sampled
        node.bandwidth.begin_outage(float("inf"))
        before = eliminator.throttle_actions + eliminator.halving_actions
        context.fire_next()  # t=120: age 60 > 59.999 — skipped
        assert eliminator.stale_skips == 1
        assert eliminator.throttle_actions + eliminator.halving_actions == before


class TestFlapDamping:
    """After a release, the same victim may not be re-throttled on that
    node until the flap cooldown passes (chaos-mode damping)."""

    def _flappy_context(self, cooldown):
        context, node = _context()
        _setup_node(node, trainer_util=0.5)
        context.start_job("trainer", 4)
        eliminator = ContentionEliminator(
            config=EliminatorConfig(flap_cooldown_s=cooldown)
        )
        eliminator.start(context)
        context.fire_next()  # t=30: hot → throttle "heat"
        assert eliminator.throttle_actions == 1
        # FakeContext records throttles without mutating node state;
        # mirror the throttle onto the node the way the runner does so
        # the release path has something to lift.
        node.mba.throttle_down("heat")
        node.bandwidth.update_demand("heat", 20.0)  # pressure collapses
        context.fire_next()  # t=60: quiet → release, cooldown starts
        assert not node.mba.throttled_jobs()
        node.bandwidth.update_demand("heat", 100.0)  # hot again
        return context, node, eliminator

    def test_rethrottle_within_cooldown_is_suppressed(self):
        context, node, eliminator = self._flappy_context(cooldown=100.0)
        context.fire_next()  # t=90: 30 s since release — suppressed
        assert eliminator.flap_suppressions == 1
        assert eliminator.throttle_actions == 1

    def test_rethrottle_after_cooldown_proceeds(self):
        context, node, eliminator = self._flappy_context(cooldown=100.0)
        context.fire_all(limit=4)  # t=90..180; cooldown ends at t=160
        assert eliminator.flap_suppressions == 3
        assert eliminator.throttle_actions == 2

    def test_zero_cooldown_keeps_historical_behaviour(self):
        context, node, eliminator = self._flappy_context(cooldown=0.0)
        context.fire_next()  # t=90: immediately re-throttled
        assert eliminator.flap_suppressions == 0
        assert eliminator.throttle_actions == 2


class TestStopAndRearm:
    def test_stop_cancels_the_pending_tick(self):
        context, _ = _context()
        eliminator = ContentionEliminator()
        eliminator.start(context)
        eliminator.stop()
        assert context.fire_next() is False  # nothing live to fire

    def test_stop_is_idempotent(self):
        context, _ = _context()
        eliminator = ContentionEliminator()
        eliminator.start(context)
        eliminator.stop()
        eliminator.stop()
        assert not eliminator._armed

    def test_restart_resumes_the_loop(self):
        context, node = _context()
        _setup_node(node, trainer_util=0.5)
        context.start_job("trainer", 4)
        eliminator = ContentionEliminator()
        eliminator.start(context)
        eliminator.stop()
        eliminator.start(context)
        assert context.fire_next()
        assert eliminator.throttle_actions == 1

    def test_stop_before_start_is_harmless(self):
        eliminator = ContentionEliminator()
        eliminator.stop()
        context, _ = _context()
        eliminator.start(context)
        assert len([e for e in context.events if not e[2].cancelled]) == 1
