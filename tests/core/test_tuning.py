"""The Sec. V-B2 feedback tuning state machine."""

import pytest

from repro.core.tuning import TuningSession
from repro.perfmodel.catalog import ALL_MODEL_NAMES, get_model
from repro.perfmodel.stages import TrainSetup
from repro.perfmodel.utilization import gpu_utilization, optimal_cores


def drive(session: TuningSession, curve) -> int:
    """Run a session to completion against a cores->utilization mapping.

    Returns the number of profiling steps taken.
    """
    cores = session.next_cores
    while cores is not None:
        cores = session.record(cores, curve(cores))
    return session.steps_taken


def synthetic_curve(optimum: int, *, peak: float = 0.95, decline: float = 0.002):
    """A Fig.-3-shaped curve: linear rise to the peak, then a decline.

    The default decline is sub-epsilon (the realistic 'drops slightly'
    regime); tests that exercise walking *down* pass a steeper one.
    """

    def curve(cores: int) -> float:
        if cores <= optimum:
            return peak * cores / optimum
        return max(0.0, peak - decline * (cores - optimum))

    return curve


class TestAgainstSyntheticCurves:
    def test_start_at_optimum_takes_three_steps(self):
        session = TuningSession(n_start=5)
        steps = drive(session, synthetic_curve(5))
        assert session.best_cores == 5
        assert steps == 3  # baseline, fewer (worse), more (worse)

    def test_start_one_below_takes_four_steps(self):
        session = TuningSession(n_start=4)
        steps = drive(session, synthetic_curve(5))
        assert session.best_cores == 5
        assert steps == 4

    def test_start_above_walks_down(self):
        """With a detectable (super-epsilon) decline, the search walks all
        the way back to the knee."""
        session = TuningSession(n_start=8)
        drive(session, synthetic_curve(5, decline=0.05))
        assert session.best_cores == 5

    def test_start_far_below_walks_up(self):
        session = TuningSession(n_start=2)
        drive(session, synthetic_curve(7))
        assert session.best_cores == 7

    def test_floor_stops_reduction(self):
        session = TuningSession(n_start=2, min_cores=1)
        drive(session, synthetic_curve(1, decline=0.05))
        assert session.best_cores == 1

    def test_ceiling_stops_growth(self):
        session = TuningSession(n_start=27, max_cores=28)
        drive(session, synthetic_curve(40))
        assert session.best_cores == 28

    def test_start_at_floor_probes_upward_only(self):
        session = TuningSession(n_start=1, min_cores=1)
        drive(session, synthetic_curve(3))
        assert session.best_cores == 3

    def test_flat_curve_slims_to_the_floor(self):
        """When utilization is flat in cores, every core above the floor
        is waste — slimming walks all the way down."""
        session = TuningSession(n_start=4, min_cores=1)
        drive(session, lambda cores: 0.5)
        assert session.best_cores == 1

    def test_flat_plateau_above_knee_slims_back_to_it(self):
        """An over-provisioned start walks down Fig. 3's flat plateau and
        settles at the knee (the transformer-1N4G case)."""
        session = TuningSession(n_start=20, max_cores=28)
        drive(session, synthetic_curve(8, decline=0.0005))
        assert session.best_cores == 8


class TestProtocol:
    def test_next_cores_starts_at_n_start(self):
        assert TuningSession(n_start=6).next_cores == 6

    def test_record_wrong_cores_raises(self):
        session = TuningSession(n_start=4)
        with pytest.raises(ValueError):
            session.record(7, 0.5)

    def test_record_bad_utilization_raises(self):
        session = TuningSession(n_start=4)
        with pytest.raises(ValueError):
            session.record(4, 1.5)

    def test_record_after_done_raises(self):
        session = TuningSession(n_start=1, min_cores=1, max_cores=1)
        assert session.record(1, 0.5) is None
        assert session.done
        with pytest.raises(RuntimeError):
            session.record(1, 0.5)

    def test_abort_settles_on_best_seen(self):
        session = TuningSession(n_start=4)
        session.record(4, 0.6)
        session.abort()
        assert session.done
        assert session.best_cores == 4
        assert session.next_cores is None

    def test_invalid_n_start_raises(self):
        with pytest.raises(ValueError):
            TuningSession(n_start=0)
        with pytest.raises(ValueError):
            TuningSession(n_start=29, max_cores=28)

    def test_negative_epsilon_raises(self):
        with pytest.raises(ValueError):
            TuningSession(n_start=4, epsilon=-0.1)

    def test_measurements_are_recorded(self):
        session = TuningSession(n_start=3)
        drive(session, synthetic_curve(3))
        cores_probed = [cores for cores, _ in session.measurements]
        assert cores_probed == [3, 2, 4]


class TestAgainstPerformanceModel:
    """Sec. VI-F: the allocator converges for every Table-I model."""

    @pytest.mark.parametrize("name", sorted(ALL_MODEL_NAMES))
    def test_converges_to_model_optimum_from_at_or_below(self, name):
        """From at or one below the optimum the search lands exactly on
        it: the drop below the knee is always above epsilon."""
        profile = get_model(name)
        setup = TrainSetup(1, 1)
        best = optimal_cores(profile, setup)
        for offset in (-1, 0):
            n_start = max(1, best + offset)
            session = TuningSession(n_start=n_start, max_cores=28)
            drive(session, lambda c: gpu_utilization(profile, setup, c))
            assert session.best_cores == best, (name, offset)

    @pytest.mark.parametrize("name", sorted(ALL_MODEL_NAMES))
    def test_from_above_settles_within_epsilon_of_peak(self, name):
        """From above the knee, the gentle post-optimum decline (Fig. 3)
        is below epsilon by design, so the search may legitimately settle
        one core high — but never more than epsilon away in utilization."""
        profile = get_model(name)
        setup = TrainSetup(1, 1)
        best = optimal_cores(profile, setup)
        session = TuningSession(n_start=best + 1, max_cores=28)
        drive(session, lambda c: gpu_utilization(profile, setup, c))
        settled_util = gpu_utilization(profile, setup, session.best_cores)
        peak_util = gpu_utilization(profile, setup, best)
        assert abs(session.best_cores - best) <= 1
        assert settled_util >= peak_util - session.epsilon

    @pytest.mark.parametrize("name", sorted(ALL_MODEL_NAMES))
    def test_at_most_four_steps_from_near_start(self, name):
        """Table II: every model converges within 4 profiling steps."""
        profile = get_model(name)
        setup = TrainSetup(1, 1)
        best = optimal_cores(profile, setup)
        for offset in (-1, 0):
            n_start = max(1, best + offset)
            session = TuningSession(n_start=n_start, max_cores=28)
            steps = drive(session, lambda c: gpu_utilization(profile, setup, c))
            assert steps <= 4, (name, offset)

    def test_converges_from_category_default(self):
        """From the CV default (3) AlexNet still reaches its optimum 8,
        just with more steps."""
        profile = get_model("alexnet")
        setup = TrainSetup(1, 1)
        session = TuningSession(n_start=3, max_cores=28)
        steps = drive(session, lambda c: gpu_utilization(profile, setup, c))
        assert session.best_cores == 8
        assert steps <= 9
