"""Multi-array scheduler behaviour (Sec. V-C)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NodeConfig
from repro.core.allocator import AdaptiveCpuAllocator
from repro.core.multiarray import MultiArrayScheduler
from repro.perfmodel.stages import TrainSetup
from repro.schedulers.base import PreemptDecision, StartDecision
from repro.workload.job import CpuJob, GpuJob


def _cluster() -> Cluster:
    """Nodes 0-1: 4 GPUs; nodes 2-3: 8 GPUs.  28 cores each."""
    return Cluster(
        ClusterConfig(
            node_groups=((2, NodeConfig(gpus=4)), (2, NodeConfig(gpus=8)))
        )
    )


def _scheduler() -> MultiArrayScheduler:
    return MultiArrayScheduler(
        AdaptiveCpuAllocator(), reserved_cores=16, four_gpu_fraction=0.5
    )


def _gpu(job_id, tenant=1, gpus=1, nodes=1, model="resnet50"):
    return GpuJob(
        job_id=job_id,
        tenant_id=tenant,
        submit_time=0.0,
        model_name=model,
        setup=TrainSetup(nodes, gpus),
        requested_cpus=2,
        total_iterations=100,
    )


def _cpu(job_id, tenant=18, cores=4):
    return CpuJob(job_id=job_id, tenant_id=tenant, submit_time=0.0, cores=cores)


def apply(scheduler, cluster, decisions, now=0.0):
    """Execute decisions the way the runner would."""
    jobs_started = []
    for decision in decisions:
        if isinstance(decision, StartDecision):
            cluster.allocate(
                decision.job.job_id, list(decision.placements)
            )
            scheduler.job_started(decision.job, list(decision.placements), now)
            jobs_started.append(decision.job)
        elif isinstance(decision, PreemptDecision):
            job = scheduler._running[decision.job_id]
            cluster.release(decision.job_id)
            scheduler.job_preempted(
                job, now, preserve_progress=decision.preserve_progress
            )
    return jobs_started


class TestSubArrayRouting:
    def test_small_job_goes_to_one_gpu_array(self):
        cluster, scheduler = _cluster(), _scheduler()
        scheduler.submit(_gpu("small", gpus=1), 0.0)
        decisions = scheduler.schedule(cluster, 0.0)
        assert decisions[0].placements[0][0] in {0, 1}

    def test_big_job_goes_to_four_gpu_array(self):
        cluster, scheduler = _cluster(), _scheduler()
        scheduler.submit(_gpu("big", gpus=4), 0.0)
        decisions = scheduler.schedule(cluster, 0.0)
        assert decisions[0].placements[0][0] in {2, 3}

    def test_multi_node_big_job_spans_big_array(self):
        cluster, scheduler = _cluster(), _scheduler()
        scheduler.submit(_gpu("big", gpus=2, nodes=2), 0.0)
        decisions = scheduler.schedule(cluster, 0.0)
        nodes = {p[0] for p in decisions[0].placements}
        assert nodes <= {2, 3}
        assert len(nodes) == 2

    def test_allocator_assigns_cores_not_request(self):
        cluster, scheduler = _cluster(), _scheduler()
        scheduler.submit(_gpu("j", model="bat"), 0.0)  # NLP default start 5
        decisions = scheduler.schedule(cluster, 0.0)
        assert decisions[0].placements[0][1] == 5

    def test_small_job_borrows_big_array_when_small_is_full(self):
        cluster, scheduler = _cluster(), _scheduler()
        cluster.allocate("wall0", [(0, 1, 4)])
        cluster.allocate("wall1", [(1, 1, 4)])
        scheduler.submit(_gpu("borrower", gpus=1), 0.0)
        decisions = scheduler.schedule(cluster, 0.0)
        apply(scheduler, cluster, decisions)
        assert scheduler._borrowed_gpu["borrower"] in {2, 3}

    def test_big_job_overflows_to_one_gpu_array(self):
        cluster, scheduler = _cluster(), _scheduler()
        cluster.allocate("wall2", [(2, 1, 8)])
        cluster.allocate("wall3", [(3, 1, 8)])
        scheduler.submit(_gpu("big", gpus=4), 0.0)
        decisions = scheduler.schedule(cluster, 0.0)
        apply(scheduler, cluster, decisions)
        assert decisions[-1].placements[0][0] in {0, 1}
        assert "big" not in scheduler._borrowed_gpu  # big jobs never borrow


class TestMigration:
    def test_big_job_migrates_small_borrower(self):
        cluster, scheduler = _cluster(), _scheduler()
        # Fill the small array and both big nodes except node 3's GPUs,
        # then park a borrower on node 3.
        cluster.allocate("wall0", [(0, 1, 4)])
        cluster.allocate("wall1", [(1, 1, 4)])
        cluster.allocate("wall2", [(2, 1, 8)])
        cluster.allocate("big3", [(3, 1, 6)])
        scheduler.submit(_gpu("borrower", gpus=1), 0.0)
        apply(scheduler, cluster, scheduler.schedule(cluster, 0.0))
        assert scheduler._borrowed_gpu["borrower"] == 3
        # Free node 3's big job so 6 GPUs open; a 8-GPU... use 4-GPU job
        cluster.release("big3")
        cluster.release("wall2")
        cluster.allocate("wall2b", [(2, 1, 8)])
        # Now node 3 has 7 free GPUs + borrower holding 1. An 8-GPU job
        # fits only if the borrower is migrated away.
        scheduler.submit(_gpu("claimer", gpus=8), 1.0)
        decisions = scheduler.schedule(cluster, 1.0)
        kinds = [type(d).__name__ for d in decisions]
        assert "PreemptDecision" in kinds
        preempt = next(d for d in decisions if isinstance(d, PreemptDecision))
        assert preempt.job_id == "borrower"
        assert preempt.preserve_progress  # migration, not abort
        apply(scheduler, cluster, decisions)
        assert cluster.has_allocation("claimer")
        # The migrated borrower is back at its queue head.
        assert scheduler.pending_jobs()[0].job_id == "borrower"


class TestCpuArray:
    def test_cpu_job_lands_in_unreserved_capacity(self):
        cluster, scheduler = _cluster(), _scheduler()
        scheduler.submit(_cpu("c1", cores=8), 0.0)
        decisions = scheduler.schedule(cluster, 0.0)
        assert isinstance(decisions[0], StartDecision)

    def test_cpu_array_capacity_is_respected(self):
        """With 16 of 28 cores reserved, only 12 per node are CPU-array;
        a fourth 12-core job must wait while GPU jobs are queued."""
        cluster, scheduler = _cluster(), _scheduler()
        # Keep the GPU queue non-empty so borrowing is off: a job that can
        # never fit (8 GPUs on... all 8-GPU nodes blocked).
        cluster.allocate("blocker", [(2, 1, 1), (3, 1, 1)])
        scheduler.submit(_gpu("stuck", gpus=8), 0.0)
        for index in range(5):
            scheduler.submit(_cpu(f"c{index}", cores=12), 0.0)
        decisions = scheduler.schedule(cluster, 0.0)
        starts = [d for d in decisions if isinstance(d, StartDecision)]
        cpu_starts = [d for d in starts if d.job.job_id.startswith("c")]
        assert len(cpu_starts) == 4  # one 12-core slot per node

    def test_cpu_borrows_reserved_cores_when_gpu_queue_idle(self):
        cluster, scheduler = _cluster(), _scheduler()
        for index in range(5):
            scheduler.submit(_cpu(f"c{index}", cores=12), 0.0)
        decisions = scheduler.schedule(cluster, 0.0)
        apply(scheduler, cluster, decisions)
        starts = [d for d in decisions if isinstance(d, StartDecision)]
        assert len(starts) == 5
        assert len(scheduler._borrowed_cpu) == 1

    def test_gpu_job_aborts_cpu_borrowers(self):
        cluster, scheduler = _cluster(), _scheduler()
        # Fill every node's cores with borrowing CPU jobs.
        for index in range(8):
            scheduler.submit(_cpu(f"c{index}", cores=14), 0.0)
        apply(scheduler, cluster, scheduler.schedule(cluster, 0.0))
        assert scheduler._borrowed_cpu
        scheduler.submit(_gpu("train", gpus=1, model="alexnet"), 1.0)
        decisions = scheduler.schedule(cluster, 1.0)
        preempts = [d for d in decisions if isinstance(d, PreemptDecision)]
        assert preempts
        assert all(not p.preserve_progress for p in preempts)  # abort
        apply(scheduler, cluster, decisions)
        assert cluster.has_allocation("train")

    def test_aborted_borrower_requeues_at_head(self):
        cluster, scheduler = _cluster(), _scheduler()
        for index in range(8):
            scheduler.submit(_cpu(f"c{index}", cores=14), 0.0)
        apply(scheduler, cluster, scheduler.schedule(cluster, 0.0))
        borrower = next(iter(scheduler._borrowed_cpu))
        scheduler.submit(_gpu("train", gpus=1, model="alexnet"), 1.0)
        decisions = scheduler.schedule(cluster, 1.0)
        apply(scheduler, cluster, decisions)
        pending_cpu = [
            j.job_id for j in scheduler.pending_jobs() if isinstance(j, CpuJob)
        ]
        assert borrower in pending_cpu


class TestFairnessAndBackfill:
    def test_drf_alternates_tenants_in_gpu_array(self):
        cluster, scheduler = _cluster(), _scheduler()
        for index in range(3):
            scheduler.submit(_gpu(f"a{index}", tenant=1), 0.0)
            scheduler.submit(_gpu(f"b{index}", tenant=2), 0.0)
        decisions = scheduler.schedule(cluster, 0.0)
        tenants = [d.job.tenant_id for d in decisions[:4]]
        assert tenants == [1, 2, 1, 2]

    def test_blocked_big_head_does_not_block_small_jobs(self):
        cluster, scheduler = _cluster(), _scheduler()
        cluster.allocate("blocker", [(2, 1, 1), (3, 1, 1)])
        scheduler.submit(_gpu("whale", tenant=1, gpus=8), 0.0)
        scheduler.submit(_gpu("minnow", tenant=1, gpus=1), 1.0)
        decisions = scheduler.schedule(cluster, 1.0)
        started = [d.job.job_id for d in decisions if isinstance(d, StartDecision)]
        assert "minnow" in started

    def test_backfill_within_subarray_queue(self):
        cluster, scheduler = _cluster(), _scheduler()
        # Both 8-GPU nodes are partially occupied, so an 8-GPU gang can
        # never form, but a 4-GPU sibling still fits.
        cluster.allocate("blocker", [(2, 1, 5), (3, 1, 1)])
        scheduler.submit(_gpu("first", tenant=1, gpus=8), 0.0)
        scheduler.submit(_gpu("second", tenant=1, gpus=4), 1.0)
        decisions = scheduler.schedule(cluster, 1.0)
        started = [d.job.job_id for d in decisions if isinstance(d, StartDecision)]
        assert "second" in started
        assert "first" not in started

    def test_preempted_gpu_job_requeues_in_matching_subarray(self):
        scheduler = _scheduler()
        big = _gpu("big", gpus=4)
        scheduler.job_preempted(big, 0.0, preserve_progress=True)
        assert scheduler._gpu_queues_big[1][0].job_id == "big"


class TestSlimming:
    def test_core_ladder_halves_down_to_gpu_floor(self):
        job = _gpu("j", gpus=2)
        ladder = MultiArrayScheduler._core_ladder(job, 16)
        assert ladder == [16, 8, 4, 2]

    def test_core_ladder_trivial_when_at_floor(self):
        job = _gpu("j", gpus=2)
        assert MultiArrayScheduler._core_ladder(job, 2) == [2]

    def test_tight_node_gets_slim_placement(self):
        cluster, scheduler = _cluster(), _scheduler()
        # Leave only 3 free cores on each node that has GPUs free.
        cluster.allocate("hog0", [(0, 25, 0)])
        cluster.allocate("hog1", [(1, 25, 0)])
        cluster.allocate("hog2", [(2, 25, 0)])
        cluster.allocate("hog3", [(3, 25, 0)])
        scheduler.submit(_gpu("j", model="alexnet"), 0.0)  # wants 8 by default
        decisions = scheduler.schedule(cluster, 0.0)
        assert decisions
        assert decisions[0].placements[0][1] <= 3


class TestLifecycleBookkeeping:
    def test_finish_clears_all_state(self):
        cluster, scheduler = _cluster(), _scheduler()
        job = _gpu("j")
        scheduler.submit(job, 0.0)
        apply(scheduler, cluster, scheduler.schedule(cluster, 0.0))
        cluster.release("j")
        scheduler.job_finished(job, 5.0)
        assert "j" not in scheduler._running
        assert scheduler._gpu_ledger.usage_of(1).gpus == 0

    def test_rejects_unknown_job_type(self):
        with pytest.raises(TypeError):
            _scheduler().submit(object(), 0.0)

    def test_pending_jobs_spans_all_queues(self):
        scheduler = _scheduler()
        scheduler.submit(_gpu("g1", gpus=1), 0.0)
        scheduler.submit(_gpu("g4", gpus=4), 0.0)
        scheduler.submit(_cpu("c1"), 0.0)
        assert {j.job_id for j in scheduler.pending_jobs()} == {"g1", "g4", "c1"}


class TestBorrowerAbortRecovery:
    """Aborted CPU borrowers re-enter at the array head and rerun whole
    (the abort path sets ``preserve_progress=False``)."""

    def test_aborted_borrower_lands_at_queue_head(self):
        cluster, scheduler = _cluster(), _scheduler()
        for index in range(8):
            scheduler.submit(_cpu(f"c{index}", cores=14), 0.0)
        apply(scheduler, cluster, scheduler.schedule(cluster, 0.0))
        borrower = next(iter(scheduler._borrowed_cpu))
        # A same-tenant newcomer queued *before* the abort must end up
        # behind the re-queued borrower, not ahead of it.
        scheduler.submit(_cpu("late", cores=14), 1.0)
        scheduler.submit(_gpu("train", gpus=1, model="alexnet"), 1.0)
        apply(scheduler, cluster, scheduler.schedule(cluster, 1.0))
        queue = scheduler._cpu_queues[18]
        assert queue[0].job_id == borrower
        assert [j.job_id for j in queue if j.job_id == "late"] == ["late"]

    def test_aborted_borrower_reruns_to_completion(self):
        from repro.cluster.cluster import Cluster as _Cluster
        from repro.experiments.runner import SimulationRunner
        from repro.workload.job import CpuJob as _CpuJob

        cluster = _Cluster(
            ClusterConfig(
                node_groups=((2, NodeConfig(gpus=4)), (2, NodeConfig(gpus=8)))
            )
        )
        scheduler = _scheduler()
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=50.0)
        for index in range(8):
            runner.submit_at(
                0.0,
                _CpuJob(
                    job_id=f"c{index}",
                    tenant_id=18,
                    submit_time=0.0,
                    cores=14,
                    duration_s=300.0,
                ),
            )
        runner.engine.run(until=1.0)
        assert scheduler._borrowed_cpu
        borrower = next(iter(scheduler._borrowed_cpu))
        started_once = runner.collector.records[borrower].start_count
        assert started_once == 1
        gpu = _gpu("train", gpus=1, model="alexnet")
        runner.submit_at(2.0, gpu)
        runner.engine.run()
        record = runner.collector.records[borrower]
        # Aborted (progress dropped), re-queued, restarted, and finished.
        assert record.preempt_count >= 1
        assert record.start_count >= 2
        assert record.finish_time is not None
        assert all(
            runner.collector.records[f"c{i}"].finish_time is not None
            for i in range(8)
        )
