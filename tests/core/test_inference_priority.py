"""User-facing inference jobs outrank training (Sec. V-A).

"DNN training jobs have higher priority than all CPU jobs on GPU clusters
except the user-facing inference jobs."  Three consequences, each tested:
the eliminator never throttles inference; the multi-array scheduler never
aborts it; and it starts promptly even when the reserved cores are all
that is left.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NodeConfig, small_cluster
from repro.core.coda import CodaConfig, CodaScheduler
from repro.core.eliminator import EliminatorConfig
from repro.experiments.runner import SimulationRunner
from repro.perfmodel.stages import TrainSetup
from repro.workload.job import CpuJob, GpuJob
from repro.workload.tracegen import TraceConfig, generate_trace


def _inference(job_id, cores=2, duration=600.0, bw=0.5, submit=0.0, tenant=9):
    return CpuJob(
        job_id=job_id,
        tenant_id=tenant,
        submit_time=submit,
        cores=cores,
        duration_s=duration,
        bw_demand_gbps=bw,
        is_inference=True,
    )


def _gpu(job_id, model="bat", iters=5000, submit=0.0, gpus=1):
    return GpuJob(
        job_id=job_id,
        tenant_id=1,
        submit_time=submit,
        model_name=model,
        setup=TrainSetup(1, gpus),
        requested_cpus=5,
        total_iterations=iters,
    )


class TestJobValidation:
    def test_cannot_be_heat_and_inference(self):
        with pytest.raises(ValueError):
            CpuJob(
                job_id="x", tenant_id=1, submit_time=0.0,
                is_heat=True, is_inference=True,
            )


class TestEliminatorExemption:
    def test_inference_is_never_the_victim(self):
        """Even a bandwidth-hungry inference job is not throttled; with no
        other candidate the eliminator stands down."""
        cluster = Cluster(
            ClusterConfig(
                node_groups=((1, NodeConfig(gpus=4, mem_bandwidth_gbps=110.0)),)
            )
        )
        scheduler = CodaScheduler(
            CodaConfig(eliminator=EliminatorConfig(monitor_interval_s=30.0))
        )
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        runner.submit_at(0.0, _gpu("nlp"))
        runner.submit_at(
            1.0, _inference("serving", cores=8, duration=1e6, bw=96.0)
        )
        runner.engine.run(until=600.0)
        node = cluster.nodes[0]
        assert node.bandwidth.pressure > 0.75
        assert scheduler.eliminator.throttle_actions == 0
        assert node.mba.throttle_level("serving") == 1.0


class TestNeverAborted:
    def test_training_does_not_reclaim_inference_cores(self):
        """A training job that would need the inference job's cores queues
        instead of aborting it."""
        cluster = Cluster(
            ClusterConfig(node_groups=((1, NodeConfig(cores=8, gpus=4)),))
        )
        scheduler = CodaScheduler(CodaConfig(reserved_cores=6))
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        # Inference takes 7 of 8 cores (reserved included — it may).
        runner.submit_at(0.0, _inference("serving", cores=7, duration=2000.0))
        runner.engine.run(until=1.0)
        assert cluster.has_allocation("serving")
        runner.submit_at(2.0, _gpu("train", model="transformer", iters=50))
        runner.engine.run(until=100.0)
        # The trainer slims onto the single remaining core rather than
        # aborting the inference job.
        assert cluster.has_allocation("serving")
        if cluster.has_allocation("train"):
            assert cluster.allocation_of("train").shares[0].cpus == 1
        assert runner.collector.records["serving"].preempt_count == 0

    def test_normal_borrowers_still_get_aborted(self):
        """Sanity check that the exemption is inference-specific."""
        cluster = Cluster(
            ClusterConfig(node_groups=((1, NodeConfig(cores=8, gpus=4)),))
        )
        scheduler = CodaScheduler(CodaConfig(reserved_cores=6))
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        normal = CpuJob(
            job_id="batch", tenant_id=9, submit_time=0.0, cores=7,
            duration_s=2000.0,
        )
        runner.submit_at(0.0, normal)
        runner.engine.run(until=1.0)
        assert "batch" in scheduler._borrowed_cpu
        runner.submit_at(2.0, _gpu("train", model="bat", iters=50))
        runner.engine.run(until=100.0)
        assert runner.collector.records["batch"].preempt_count >= 1


class TestPromptScheduling:
    def test_inference_uses_reserved_cores_despite_gpu_backlog(self):
        """Borrowing normally requires an idle GPU queue; inference is
        exempt from that condition too."""
        cluster = Cluster(small_cluster(nodes=1))
        scheduler = CodaScheduler(CodaConfig(reserved_cores=26))
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        # CPU-array capacity is 2 cores; keep the GPU queue non-empty with
        # an impossible job.
        runner.submit_at(0.0, _gpu("stuck", gpus=8))
        runner.submit_at(0.0, _inference("serving", cores=6, duration=60.0))
        runner.engine.run(until=10.0)
        record = runner.collector.records["serving"]
        assert record.first_start is not None
        assert record.queueing_time == 0.0

    def test_inference_drains_before_normal_cpu_jobs(self):
        cluster = Cluster(ClusterConfig(node_groups=((1, NodeConfig(cores=8, gpus=0)),)))
        scheduler = CodaScheduler()
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        # Saturate, then submit one of each at the same instant.
        runner.submit_at(0.0, CpuJob(job_id="hog", tenant_id=8, submit_time=0.0,
                                     cores=8, duration_s=100.0))
        runner.submit_at(
            1.0,
            CpuJob(job_id="batch", tenant_id=8, submit_time=1.0, cores=8,
                   duration_s=50.0),
        )
        runner.submit_at(2.0, _inference("serving", cores=8, duration=50.0))
        # A horizon is required: the eliminator's monitor re-arms forever.
        runner.engine.run(until=1000.0)
        batch = runner.collector.records["batch"]
        serving = runner.collector.records["serving"]
        assert serving.first_start < batch.first_start


class TestTraceGeneration:
    def test_inference_fraction(self):
        trace = generate_trace(
            TraceConfig(duration_days=1.0, gpu_jobs_per_day=0.0, seed=6)
        )
        inference = [j for j in trace.cpu_jobs if j.is_inference]
        fraction = len(inference) / len(trace.cpu_jobs)
        assert fraction == pytest.approx(0.3, abs=0.05)

    def test_inference_jobs_are_short_and_narrow(self):
        trace = generate_trace(
            TraceConfig(duration_days=0.5, gpu_jobs_per_day=0.0, seed=6)
        )
        for job in trace.cpu_jobs:
            if job.is_inference:
                assert job.cores <= 2
                assert job.duration_s <= 1800.0
                assert not job.is_heat

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(inference_fraction=1.2)
        with pytest.raises(ValueError):
            TraceConfig(heat_fraction=0.5, inference_fraction=0.6)

    def test_round_trip_preserves_inference_flag(self, tmp_path):
        from repro.workload.traceio import load_trace, save_trace

        trace = generate_trace(
            TraceConfig(duration_days=0.05, gpu_jobs_per_day=0.0, seed=6)
        )
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        originals = {j.job_id: j.is_inference for j in trace.cpu_jobs}
        for job in loaded.cpu_jobs:
            assert job.is_inference == originals[job.job_id]
