"""The profiling module and its engine wiring.

Profiling must be observational only: enabling it may never change what a
run computes, and the disabled path must stay allocation-free (a shared
no-op section object).
"""

from repro import profiling
from repro.profiling import Profiler
from repro.sim.engine import Engine


class TestProfiler:
    def test_counters_accumulate(self):
        profiler = Profiler()
        profiler.count("events")
        profiler.count("events", 4)
        assert profiler.counters["events"] == 5

    def test_section_accumulates_time(self):
        profiler = Profiler()
        with profiler.section("work"):
            pass
        with profiler.section("work"):
            pass
        assert profiler.timers["work"] >= 0.0
        assert set(profiler.timers) == {"work"}

    def test_add_time_and_total(self):
        profiler = Profiler()
        profiler.add_time("a", 1.0)
        profiler.add_time("b", 3.0)
        profiler.add_time("a", 1.0)
        assert profiler.total_timed_s() == 5.0

    def test_time_shares_sorted_largest_first(self):
        profiler = Profiler()
        profiler.add_time("small", 1.0)
        profiler.add_time("big", 3.0)
        rows = profiler.time_shares()
        assert [name for name, _, _ in rows] == ["big", "small"]
        assert rows[0] == ("big", 3.0, 0.75)

    def test_time_shares_explicit_total(self):
        profiler = Profiler()
        profiler.add_time("a", 2.0)
        rows = profiler.time_shares(8.0)
        assert rows == [("a", 2.0, 0.25)]

    def test_time_shares_zero_total(self):
        profiler = Profiler()
        profiler.add_time("a", 0.0)
        assert profiler.time_shares() == [("a", 0.0, 0.0)]

    def test_snapshot_is_json_ready_copy(self):
        profiler = Profiler()
        profiler.add_time("a", 1.5)
        profiler.count("n", 2)
        snap = profiler.snapshot()
        assert snap == {"timers_s": {"a": 1.5}, "counters": {"n": 2.0}}
        snap["timers_s"]["a"] = 99.0
        assert profiler.timers["a"] == 1.5


class TestModuleGlobal:
    def test_disabled_by_default_and_noop(self):
        profiling.disable()
        assert profiling.active() is None
        with profiling.section("anything"):
            pass
        profiling.count("anything")  # silently dropped

    def test_disabled_section_is_shared_singleton(self):
        profiling.disable()
        assert profiling.section("a") is profiling.section("b")

    def test_enable_installs_fresh_profiler(self):
        try:
            first = profiling.enable()
            profiling.count("n")
            second = profiling.enable()
            assert second is profiling.active()
            assert second is not first
            assert "n" not in second.counters
        finally:
            profiling.disable()

    def test_active_profiler_records(self):
        try:
            profiler = profiling.enable()
            with profiling.section("tick"):
                pass
            profiling.count("ticks")
            assert profiler.counters["ticks"] == 1
            assert "tick" in profiler.timers
        finally:
            profiling.disable()


class TestEngineWiring:
    def test_events_grouped_by_tag_category(self):
        engine = Engine()
        profiler = Profiler()
        engine.set_profiler(profiler)
        fired = []
        engine.schedule(1.0, lambda: fired.append("a"), tag="arrival:j1")
        engine.schedule(2.0, lambda: fired.append("b"), tag="sample")
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]
        assert profiler.counters["events"] == 3
        assert set(profiler.timers) == {"arrival", "sample", "untagged"}

    def test_profiler_does_not_change_event_order(self):
        def run(profiler):
            engine = Engine()
            if profiler is not None:
                engine.set_profiler(profiler)
            order = []
            engine.schedule(2.0, lambda: order.append("late"), tag="a")
            engine.schedule(1.0, lambda: order.append("early"), tag="b")
            engine.run()
            return order, engine.fired

        assert run(None) == run(Profiler())
