"""Invariant auditor: clean runs stay clean, corrupted state is caught,
and the audited simulation is indistinguishable from an unaudited one.
"""

import pytest

from repro.analysis.invariants import InvariantAuditor, InvariantViolationError
from repro.cluster.cluster import Cluster
from repro.config import small_cluster
from repro.experiments.scenarios import run_scenario, small_scenario
from repro.faults import FaultConfig
from repro.metrics.audit import AuditStats
from repro.schedulers.drf import DrfScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.sim.engine import Engine

SHORT = {"duration_days": 0.05, "seed": 0}


def attached(cluster: Cluster, **kwargs) -> InvariantAuditor:
    auditor = InvariantAuditor(60.0, **kwargs)
    auditor.attach_engine(Engine(), cluster)
    return auditor


class TestCleanRuns:
    def test_seeded_run_has_zero_violations(self):
        auditor = InvariantAuditor(120.0)
        result = run_scenario(
            small_scenario(**SHORT), FifoScheduler(), auditor=auditor
        )
        assert auditor.stats.checks_run > 1
        assert auditor.stats.assertions_evaluated > 0
        assert auditor.stats.ok
        # violations land in the run's collector, FaultStats-style.
        assert result.collector.audit is auditor.stats
        assert result.collector.audit.violation_count == 0

    def test_drf_run_audits_dominant_shares(self):
        auditor = InvariantAuditor(120.0)
        run_scenario(small_scenario(**SHORT), DrfScheduler(), auditor=auditor)
        assert auditor.stats.ok

    def test_clean_under_fault_injection(self):
        scenario = small_scenario(**SHORT).with_faults(
            FaultConfig(seed=0, node_mtbf_s=2 * 3600.0)
        )
        auditor = InvariantAuditor(120.0, strict=True)
        result = run_scenario(scenario, FifoScheduler(), auditor=auditor)
        assert result.collector.faults.node_failures > 0
        assert auditor.stats.ok

    def test_report_mentions_counts(self):
        auditor = InvariantAuditor(120.0)
        run_scenario(small_scenario(**SHORT), FifoScheduler(), auditor=auditor)
        report = auditor.report()
        assert "0 violation(s)" in report


class TestByteIdentical:
    def test_audited_run_matches_unaudited(self):
        """The auditor observes; it must never perturb the simulation."""
        plain = run_scenario(small_scenario(**SHORT), FifoScheduler())
        audited = run_scenario(
            small_scenario(**SHORT),
            FifoScheduler(),
            auditor=InvariantAuditor(60.0, strict=True),
        )
        assert audited.events_fired == plain.events_fired
        assert audited.finished_gpu_jobs == plain.finished_gpu_jobs
        assert audited.finished_cpu_jobs == plain.finished_cpu_jobs
        assert audited.preemptions == plain.preemptions

        def fingerprint(result):
            return sorted(
                (r.job_id, r.first_start, r.finish_time, r.final_cpus)
                for r in result.collector.records.values()
            )

        assert fingerprint(audited) == fingerprint(plain)


class TestCorruptionDetection:
    def test_oversubscribed_core_counter(self):
        cluster = Cluster(small_cluster(nodes=2))
        cluster.allocate("j1", [(0, 4, 1)])
        auditor = attached(cluster)
        assert auditor.check_now() == 0
        # Simulate a lost release: the counter claims more cores than the
        # shares account for.
        cluster.node(0)._used_cpus += 3
        assert auditor.check_now() > 0
        codes = set(auditor.stats.by_code())
        assert "IV001" in codes  # share sum != used counter
        assert "IV002" in codes  # ledger disagrees with node usage

    def test_negative_core_counter(self):
        cluster = Cluster(small_cluster(nodes=1))
        auditor = attached(cluster)
        cluster.node(0)._used_cpus = -1
        auditor.check_now()
        assert "IV001" in auditor.stats.by_code()

    def test_orphaned_resident(self):
        cluster = Cluster(small_cluster(nodes=1))
        # Allocate straight on the node, bypassing the cluster ledger.
        cluster.node(0).allocate("ghost", 2, 0)
        auditor = attached(cluster)
        auditor.check_now()
        assert "IV004" in auditor.stats.by_code()

    def test_double_owned_gpu(self):
        cluster = Cluster(small_cluster(nodes=1))
        cluster.allocate("j1", [(0, 2, 1)])
        node = cluster.node(0)
        share = node.share_of("j1")
        # Corrupt the GPU device table: reassign j1's GPU to another job.
        node.gpus[share.gpu_ids[0]].owner = "thief"
        auditor = attached(cluster)
        auditor.check_now()
        assert "IV001" in auditor.stats.by_code()

    def test_strict_mode_raises(self):
        cluster = Cluster(small_cluster(nodes=1))
        auditor = attached(cluster, strict=True)
        cluster.node(0)._used_cpus = -5
        with pytest.raises(InvariantViolationError) as exc_info:
            auditor.check_now()
        assert exc_info.value.violation.code == "IV001"

    def test_corruption_detected_during_live_run(self):
        """A mid-run corruption surfaces on the next audit sweep."""
        scenario = small_scenario(**SHORT)
        auditor = InvariantAuditor(60.0)
        result = run_scenario(scenario, FifoScheduler(), auditor=auditor)
        assert auditor.stats.ok
        # Now poison the final state and re-sweep.
        auditor._cluster.node(0)._used_cpus += 1
        auditor.check_now()
        assert not auditor.stats.ok
        assert not result.collector.audit.ok


class TestWiring:
    def test_double_attach_rejected(self):
        cluster = Cluster(small_cluster(nodes=1))
        auditor = attached(cluster)
        with pytest.raises(RuntimeError):
            auditor.attach_engine(Engine(), cluster)

    def test_check_now_requires_attachment(self):
        with pytest.raises(RuntimeError):
            InvariantAuditor().check_now()

    def test_detach_is_idempotent(self):
        cluster = Cluster(small_cluster(nodes=1))
        auditor = attached(cluster)
        auditor.detach()
        auditor.detach()

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            InvariantAuditor(0.0)

    def test_external_stats_sink(self):
        sink = AuditStats()
        cluster = Cluster(small_cluster(nodes=1))
        auditor = InvariantAuditor(60.0, stats=sink)
        auditor.attach_engine(Engine(), cluster)
        auditor.check_now()
        assert sink.checks_run == 1


class TestClockMonotonicity:
    def test_backwards_event_flagged(self):
        cluster = Cluster(small_cluster(nodes=1))
        engine = Engine()
        auditor = InvariantAuditor(1e9)  # sweeps quiet; isolate IV003
        auditor.attach_engine(engine, cluster)
        engine.schedule(10.0, lambda: None, tag="later")
        engine.schedule(20.0, lambda: None, tag="latest")
        engine.run()
        assert auditor.stats.ok
        # Forge an out-of-order firing by replaying an old-timestamped
        # event through the observer.
        from repro.sim.events import Event

        auditor._on_event(Event(time=5.0, priority=0, seq=99, action=lambda: None))
        assert "IV003" in auditor.stats.by_code()
