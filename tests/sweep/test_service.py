"""run_sweep: cache-aware resume, journalling, reports, degradation."""

import json

import pytest

from repro.experiments.scenarios import grid_specs, small_scenario
from repro.metrics.serialize import run_result_to_dict
from repro.parallel import ResultCache, serial_map
from repro.sweep import (
    CHECKPOINTS_DIR_NAME,
    LEDGER_NAME,
    REPORT_NAME,
    STATUS_CACHED,
    STATUS_OK,
    SupervisorConfig,
    SweepInterrupted,
    SweepLedger,
    effective_jobs,
    run_sweep,
)
from repro.sweep import service as service_module
from repro.sweep import supervisor as supervisor_module


def _dumps(result):
    return json.dumps(run_result_to_dict(result), sort_keys=True)


@pytest.fixture
def specs():
    scenario = small_scenario(duration_days=0.01, nodes=4, seed=1)
    return grid_specs(scenario, schedulers=("fifo", "coda"), seeds=(1, 2))


#: No real backoff sleeps in tests.
_FAST = SupervisorConfig(backoff_base_s=0.01)


class TestFreshSweep:
    def test_executes_all_and_matches_serial(self, tmp_path, specs):
        cache = ResultCache(tmp_path / "cache")
        result = run_sweep(
            specs, out_dir=tmp_path / "s", cache=cache, supervisor=_FAST
        )
        assert result.ok
        assert result.executed == 4 and result.reused == 0
        by_label = result.results_by_label()
        for spec, expected in zip(specs, serial_map(specs)):
            assert _dumps(by_label[spec.label()]) == _dumps(expected)

    def test_ledger_and_report_are_written(self, tmp_path, specs):
        out = tmp_path / "s"
        run_sweep(
            specs,
            out_dir=out,
            cache=ResultCache(tmp_path / "cache"),
            supervisor=_FAST,
        )
        state = SweepLedger.replay(out / LEDGER_NAME)
        assert len(state.complete_keys()) == 4
        report = (out / REPORT_NAME).read_text()
        for spec in specs:
            assert spec.label() in report

    def test_duplicate_specs_rejected(self, tmp_path, specs):
        with pytest.raises(ValueError, match="duplicate"):
            run_sweep(
                specs + specs[:1],
                out_dir=tmp_path / "s",
                cache=ResultCache(tmp_path / "cache"),
            )

    def test_rejects_non_positive_jobs(self, tmp_path, specs):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(specs, out_dir=tmp_path / "s", jobs=0)


class TestResume:
    def test_completed_sweep_resumes_to_noop(self, tmp_path, specs):
        cache = ResultCache(tmp_path / "cache")
        out = tmp_path / "s"
        first = run_sweep(specs, out_dir=out, cache=cache, supervisor=_FAST)
        again = run_sweep(
            specs, out_dir=out, cache=cache, resume=True, supervisor=_FAST
        )
        assert again.executed == 0
        assert again.reused == 4
        assert [c.status for c in again.outcomes] == [STATUS_CACHED] * 4
        for label, result in first.results_by_label().items():
            assert _dumps(again.results_by_label()[label]) == _dumps(result)

    def test_partial_sweep_runs_only_the_remainder(self, tmp_path, specs):
        cache = ResultCache(tmp_path / "cache")
        out = tmp_path / "s"
        run_sweep(specs[:2], out_dir=out, cache=cache, supervisor=_FAST)
        result = run_sweep(
            specs, out_dir=out, cache=cache, resume=True, supervisor=_FAST
        )
        assert result.reused == 2 and result.executed == 2
        statuses = {c.label: c.status for c in result.outcomes}
        assert statuses[specs[0].label()] == STATUS_CACHED
        assert statuses[specs[3].label()] == STATUS_OK

    def test_resume_tolerates_truncated_ledger_tail(self, tmp_path, specs):
        cache = ResultCache(tmp_path / "cache")
        out = tmp_path / "s"
        run_sweep(specs, out_dir=out, cache=cache, supervisor=_FAST)
        ledger_path = out / LEDGER_NAME
        whole = ledger_path.read_text()
        ledger_path.write_text(whole[: len(whole) - 15])  # crash mid-append
        messages = []
        result = run_sweep(
            specs,
            out_dir=out,
            cache=cache,
            resume=True,
            supervisor=_FAST,
            log=messages.append,
        )
        assert any("truncated" in m for m in messages)
        # The damaged line belonged to an already-cached cell, so the
        # resume still executes nothing and results stay byte-identical.
        assert result.executed == 0 and result.reused == 4
        for spec, expected in zip(specs, serial_map(specs)):
            assert _dumps(result.results_by_label()[spec.label()]) == _dumps(
                expected
            )

    def test_crash_mid_batch_keeps_completed_cells(
        self, tmp_path, specs, monkeypatch
    ):
        # Die between cell 1 and cell 2 (the first cell's result is
        # already journalled ``ok``): the resume must serve cell 1 from
        # the cache instead of re-running the whole batch.
        cache = ResultCache(tmp_path / "cache")
        out = tmp_path / "s"
        real_append = SweepLedger.append
        running = []

        def crashing_append(self, key, label, status, **kwargs):
            if status == "running":
                running.append(label)
                if len(running) == 2:
                    raise RuntimeError("simulated crash mid-batch")
            return real_append(self, key, label, status, **kwargs)

        monkeypatch.setattr(SweepLedger, "append", crashing_append)
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_sweep(specs, out_dir=out, cache=cache, supervisor=_FAST)
        monkeypatch.undo()

        result = run_sweep(
            specs, out_dir=out, cache=cache, resume=True, supervisor=_FAST
        )
        assert result.reused == 1 and result.executed == 3
        for spec, expected in zip(specs, serial_map(specs)):
            assert _dumps(result.results_by_label()[spec.label()]) == _dumps(
                expected
            )

    def test_no_cache_resume_reruns_and_says_so(self, tmp_path, specs):
        out = tmp_path / "s"
        run_sweep(specs[:2], out_dir=out, cache=None, supervisor=_FAST)
        messages = []
        result = run_sweep(
            specs[:2],
            out_dir=out,
            cache=None,
            resume=True,
            supervisor=_FAST,
            log=messages.append,
        )
        assert result.executed == 2  # nothing to reload from
        assert any("caching is disabled" in m for m in messages)


class TestQuarantinePartialResults:
    def test_poison_cell_reported_and_rest_completes(
        self, tmp_path, specs, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_RAISE_SPEC", "fifo:s1")
        cache = ResultCache(tmp_path / "cache")
        out = tmp_path / "s"
        config = SupervisorConfig(max_retries=1, backoff_base_s=0.01)
        result = run_sweep(
            specs, out_dir=out, cache=cache, supervisor=config
        )
        assert not result.ok
        assert result.quarantined == 1 and result.executed == 3
        report = (out / REPORT_NAME).read_text()
        assert "Quarantined cells" in report
        assert "injected failure" in report
        # The poison cell re-runs on resume; the rest is served cached.
        monkeypatch.delenv("REPRO_TEST_RAISE_SPEC")
        healed = run_sweep(
            specs, out_dir=out, cache=cache, resume=True, supervisor=config
        )
        assert healed.ok
        assert healed.executed == 1 and healed.reused == 3


class TestDegradation:
    def test_single_cpu_host_runs_serial_with_reason(
        self, tmp_path, specs, monkeypatch
    ):
        monkeypatch.setattr(service_module.os, "cpu_count", lambda: 1)
        monkeypatch.delenv("REPRO_SWEEP_FORCE_SPAWN", raising=False)
        messages = []
        result = run_sweep(
            specs,
            out_dir=tmp_path / "s",
            jobs=4,
            cache=ResultCache(tmp_path / "cache"),
            supervisor=_FAST,
            log=messages.append,
        )
        assert result.ok
        assert result.degraded_reason is not None
        assert "1 CPU" in result.degraded_reason
        assert any("degraded" in m for m in messages)
        assert "degraded mode" in (tmp_path / "s" / REPORT_NAME).read_text()

    def test_force_spawn_overrides_single_cpu(self, monkeypatch):
        monkeypatch.setattr(service_module.os, "cpu_count", lambda: 1)
        monkeypatch.setenv("REPRO_SWEEP_FORCE_SPAWN", "1")
        assert effective_jobs(4) == 4

    def test_effective_jobs_passthrough_on_multicore(self, monkeypatch):
        monkeypatch.setattr(service_module.os, "cpu_count", lambda: 8)
        monkeypatch.delenv("REPRO_SWEEP_FORCE_SPAWN", raising=False)
        assert effective_jobs(4) == 4
        assert effective_jobs(1) == 1


class TestCheckpointing:
    def test_interval_derives_dir_and_writes_checkpoints(
        self, tmp_path, specs
    ):
        out = tmp_path / "s"
        supervisor = SupervisorConfig(
            backoff_base_s=0.01, checkpoint_every_events=50
        )
        result = run_sweep(
            specs,
            out_dir=out,
            cache=ResultCache(tmp_path / "cache"),
            supervisor=supervisor,
        )
        assert result.ok
        # Short cells (fifo fires ~31 events) never reach the 50-event
        # interval; the long coda cells must have durable snapshots.
        cells = {p.name for p in (out / CHECKPOINTS_DIR_NAME).iterdir()}
        assert cells <= {s.label().replace(":", "_") for s in specs}
        for label in ("coda_s1", "coda_s2"):
            assert label in cells
            written = [
                p.name for p in (out / CHECKPOINTS_DIR_NAME / label).iterdir()
            ]
            assert written and all(n.startswith("ckpt-") for n in written)

    def test_checkpointing_does_not_perturb_results(self, tmp_path, specs):
        supervisor = SupervisorConfig(
            backoff_base_s=0.01, checkpoint_every_events=50
        )
        result = run_sweep(
            specs,
            out_dir=tmp_path / "s",
            cache=ResultCache(tmp_path / "cache"),
            supervisor=supervisor,
        )
        by_label = result.results_by_label()
        for spec, expected in zip(specs, serial_map(specs)):
            assert _dumps(by_label[spec.label()]) == _dumps(expected)

    def test_midrun_kill_journals_the_restore(
        self, tmp_path, specs, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_CRASH_SPEC", "coda:s1")
        monkeypatch.setenv("REPRO_TEST_CRASH_MODE", "midrun")
        monkeypatch.setenv("REPRO_TEST_CRASH_EVENT", "120")
        monkeypatch.setenv("REPRO_TEST_CRASH_ONCE_DIR", str(tmp_path / "once"))
        # The SIGKILL must land in a worker process, not the test run:
        # don't let a single-CPU host degrade the batch to in-process.
        monkeypatch.setenv("REPRO_SWEEP_FORCE_SPAWN", "1")
        out = tmp_path / "s"
        supervisor = SupervisorConfig(
            backoff_base_s=0.01,
            max_retries=2,
            checkpoint_every_events=40,
        )
        result = run_sweep(
            specs,
            out_dir=out,
            jobs=2,
            cache=ResultCache(tmp_path / "cache"),
            supervisor=supervisor,
        )
        assert result.ok
        ledger_text = (out / LEDGER_NAME).read_text()
        assert "restored_from=" in ledger_text
        by_label = result.results_by_label()
        for spec, expected in zip(specs, serial_map(specs)):
            assert _dumps(by_label[spec.label()]) == _dumps(expected)

    def test_report_carries_cache_stats_line(self, tmp_path, specs):
        out = tmp_path / "s"
        run_sweep(
            specs,
            out_dir=out,
            cache=ResultCache(tmp_path / "cache"),
            supervisor=_FAST,
        )
        report = (out / REPORT_NAME).read_text()
        assert "- cache:" in report
        assert "store retry" in report and "store failure" in report


class TestInterruptedSweep:
    def _interrupt_on(self, monkeypatch, label):
        real = supervisor_module._execute_attempt

        def fake(spec, config, notify=None):
            if spec.label() == label:
                raise KeyboardInterrupt
            return real(spec, config, notify)

        monkeypatch.setattr(supervisor_module, "_execute_attempt", fake)

    def test_interrupt_journals_flushes_and_raises(
        self, tmp_path, specs, monkeypatch
    ):
        self._interrupt_on(monkeypatch, "coda:s1")
        out = tmp_path / "s"
        with pytest.raises(SweepInterrupted) as info:
            run_sweep(
                specs,
                out_dir=out,
                cache=ResultCache(tmp_path / "cache"),
                supervisor=_FAST,
            )
        result = info.value.result
        assert not result.ok
        assert result.interrupted == 2  # coda:s1 and the never-started coda:s2
        assert result.executed == 2
        ledger_text = (out / LEDGER_NAME).read_text()
        assert '"interrupted"' in ledger_text
        # Partial results and the report were still flushed.
        assert (out / REPORT_NAME).exists()
        assert "interrupted" in (out / REPORT_NAME).read_text()

    def test_interrupted_sweep_resumes_to_completion(
        self, tmp_path, specs, monkeypatch
    ):
        self._interrupt_on(monkeypatch, "coda:s1")
        out = tmp_path / "s"
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(SweepInterrupted):
            run_sweep(specs, out_dir=out, cache=cache, supervisor=_FAST)
        monkeypatch.undo()
        result = run_sweep(specs, out_dir=out, cache=cache, supervisor=_FAST)
        assert result.ok
        assert result.reused == 2  # the two cells settled before the signal
        assert result.executed == 2  # the interrupted remainder re-ran
        by_label = result.results_by_label()
        for spec, expected in zip(specs, serial_map(specs)):
            assert _dumps(by_label[spec.label()]) == _dumps(expected)
