"""run_sweep: cache-aware resume, journalling, reports, degradation."""

import json

import pytest

from repro.experiments.scenarios import grid_specs, small_scenario
from repro.metrics.serialize import run_result_to_dict
from repro.parallel import ResultCache, serial_map
from repro.sweep import (
    LEDGER_NAME,
    REPORT_NAME,
    STATUS_CACHED,
    STATUS_OK,
    SupervisorConfig,
    SweepLedger,
    effective_jobs,
    run_sweep,
)
from repro.sweep import service as service_module


def _dumps(result):
    return json.dumps(run_result_to_dict(result), sort_keys=True)


@pytest.fixture
def specs():
    scenario = small_scenario(duration_days=0.01, nodes=4, seed=1)
    return grid_specs(scenario, schedulers=("fifo", "coda"), seeds=(1, 2))


#: No real backoff sleeps in tests.
_FAST = SupervisorConfig(backoff_base_s=0.01)


class TestFreshSweep:
    def test_executes_all_and_matches_serial(self, tmp_path, specs):
        cache = ResultCache(tmp_path / "cache")
        result = run_sweep(
            specs, out_dir=tmp_path / "s", cache=cache, supervisor=_FAST
        )
        assert result.ok
        assert result.executed == 4 and result.reused == 0
        by_label = result.results_by_label()
        for spec, expected in zip(specs, serial_map(specs)):
            assert _dumps(by_label[spec.label()]) == _dumps(expected)

    def test_ledger_and_report_are_written(self, tmp_path, specs):
        out = tmp_path / "s"
        run_sweep(
            specs,
            out_dir=out,
            cache=ResultCache(tmp_path / "cache"),
            supervisor=_FAST,
        )
        state = SweepLedger.replay(out / LEDGER_NAME)
        assert len(state.complete_keys()) == 4
        report = (out / REPORT_NAME).read_text()
        for spec in specs:
            assert spec.label() in report

    def test_duplicate_specs_rejected(self, tmp_path, specs):
        with pytest.raises(ValueError, match="duplicate"):
            run_sweep(
                specs + specs[:1],
                out_dir=tmp_path / "s",
                cache=ResultCache(tmp_path / "cache"),
            )

    def test_rejects_non_positive_jobs(self, tmp_path, specs):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(specs, out_dir=tmp_path / "s", jobs=0)


class TestResume:
    def test_completed_sweep_resumes_to_noop(self, tmp_path, specs):
        cache = ResultCache(tmp_path / "cache")
        out = tmp_path / "s"
        first = run_sweep(specs, out_dir=out, cache=cache, supervisor=_FAST)
        again = run_sweep(
            specs, out_dir=out, cache=cache, resume=True, supervisor=_FAST
        )
        assert again.executed == 0
        assert again.reused == 4
        assert [c.status for c in again.outcomes] == [STATUS_CACHED] * 4
        for label, result in first.results_by_label().items():
            assert _dumps(again.results_by_label()[label]) == _dumps(result)

    def test_partial_sweep_runs_only_the_remainder(self, tmp_path, specs):
        cache = ResultCache(tmp_path / "cache")
        out = tmp_path / "s"
        run_sweep(specs[:2], out_dir=out, cache=cache, supervisor=_FAST)
        result = run_sweep(
            specs, out_dir=out, cache=cache, resume=True, supervisor=_FAST
        )
        assert result.reused == 2 and result.executed == 2
        statuses = {c.label: c.status for c in result.outcomes}
        assert statuses[specs[0].label()] == STATUS_CACHED
        assert statuses[specs[3].label()] == STATUS_OK

    def test_resume_tolerates_truncated_ledger_tail(self, tmp_path, specs):
        cache = ResultCache(tmp_path / "cache")
        out = tmp_path / "s"
        run_sweep(specs, out_dir=out, cache=cache, supervisor=_FAST)
        ledger_path = out / LEDGER_NAME
        whole = ledger_path.read_text()
        ledger_path.write_text(whole[: len(whole) - 15])  # crash mid-append
        messages = []
        result = run_sweep(
            specs,
            out_dir=out,
            cache=cache,
            resume=True,
            supervisor=_FAST,
            log=messages.append,
        )
        assert any("truncated" in m for m in messages)
        # The damaged line belonged to an already-cached cell, so the
        # resume still executes nothing and results stay byte-identical.
        assert result.executed == 0 and result.reused == 4
        for spec, expected in zip(specs, serial_map(specs)):
            assert _dumps(result.results_by_label()[spec.label()]) == _dumps(
                expected
            )

    def test_crash_mid_batch_keeps_completed_cells(
        self, tmp_path, specs, monkeypatch
    ):
        # Die between cell 1 and cell 2 (the first cell's result is
        # already journalled ``ok``): the resume must serve cell 1 from
        # the cache instead of re-running the whole batch.
        cache = ResultCache(tmp_path / "cache")
        out = tmp_path / "s"
        real_append = SweepLedger.append
        running = []

        def crashing_append(self, key, label, status, **kwargs):
            if status == "running":
                running.append(label)
                if len(running) == 2:
                    raise RuntimeError("simulated crash mid-batch")
            return real_append(self, key, label, status, **kwargs)

        monkeypatch.setattr(SweepLedger, "append", crashing_append)
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_sweep(specs, out_dir=out, cache=cache, supervisor=_FAST)
        monkeypatch.undo()

        result = run_sweep(
            specs, out_dir=out, cache=cache, resume=True, supervisor=_FAST
        )
        assert result.reused == 1 and result.executed == 3
        for spec, expected in zip(specs, serial_map(specs)):
            assert _dumps(result.results_by_label()[spec.label()]) == _dumps(
                expected
            )

    def test_no_cache_resume_reruns_and_says_so(self, tmp_path, specs):
        out = tmp_path / "s"
        run_sweep(specs[:2], out_dir=out, cache=None, supervisor=_FAST)
        messages = []
        result = run_sweep(
            specs[:2],
            out_dir=out,
            cache=None,
            resume=True,
            supervisor=_FAST,
            log=messages.append,
        )
        assert result.executed == 2  # nothing to reload from
        assert any("caching is disabled" in m for m in messages)


class TestQuarantinePartialResults:
    def test_poison_cell_reported_and_rest_completes(
        self, tmp_path, specs, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_RAISE_SPEC", "fifo:s1")
        cache = ResultCache(tmp_path / "cache")
        out = tmp_path / "s"
        config = SupervisorConfig(max_retries=1, backoff_base_s=0.01)
        result = run_sweep(
            specs, out_dir=out, cache=cache, supervisor=config
        )
        assert not result.ok
        assert result.quarantined == 1 and result.executed == 3
        report = (out / REPORT_NAME).read_text()
        assert "Quarantined cells" in report
        assert "injected failure" in report
        # The poison cell re-runs on resume; the rest is served cached.
        monkeypatch.delenv("REPRO_TEST_RAISE_SPEC")
        healed = run_sweep(
            specs, out_dir=out, cache=cache, resume=True, supervisor=config
        )
        assert healed.ok
        assert healed.executed == 1 and healed.reused == 3


class TestDegradation:
    def test_single_cpu_host_runs_serial_with_reason(
        self, tmp_path, specs, monkeypatch
    ):
        monkeypatch.setattr(service_module.os, "cpu_count", lambda: 1)
        monkeypatch.delenv("REPRO_SWEEP_FORCE_SPAWN", raising=False)
        messages = []
        result = run_sweep(
            specs,
            out_dir=tmp_path / "s",
            jobs=4,
            cache=ResultCache(tmp_path / "cache"),
            supervisor=_FAST,
            log=messages.append,
        )
        assert result.ok
        assert result.degraded_reason is not None
        assert "1 CPU" in result.degraded_reason
        assert any("degraded" in m for m in messages)
        assert "degraded mode" in (tmp_path / "s" / REPORT_NAME).read_text()

    def test_force_spawn_overrides_single_cpu(self, monkeypatch):
        monkeypatch.setattr(service_module.os, "cpu_count", lambda: 1)
        monkeypatch.setenv("REPRO_SWEEP_FORCE_SPAWN", "1")
        assert effective_jobs(4) == 4

    def test_effective_jobs_passthrough_on_multicore(self, monkeypatch):
        monkeypatch.setattr(service_module.os, "cpu_count", lambda: 8)
        monkeypatch.delenv("REPRO_SWEEP_FORCE_SPAWN", raising=False)
        assert effective_jobs(4) == 4
        assert effective_jobs(1) == 1
