"""The ``repro-sim sweep`` subcommand end to end."""

from repro.cli import main
from repro.sweep import LEDGER_NAME, MANIFEST_NAME, REPORT_NAME


def _sweep_argv(base, mode_flag, mode_dir):
    return [
        "sweep", mode_flag, str(mode_dir),
        "--days", "0.02", "--policies", "fifo,coda", "--seeds", "1",
        "--jobs", "1", "--backoff-base", "0.01",
        "--cache-dir", str(base / "cache"),
    ]


class TestFreshAndResume:
    def test_fresh_then_resume_is_noop(self, tmp_path, capsys):
        out = tmp_path / "sweep"
        assert main(_sweep_argv(tmp_path, "--out", out)) == 0
        fresh = capsys.readouterr().out
        assert "Starting sweep" in fresh
        assert "2 cell(s)" in fresh
        assert "executed 2 new simulation run(s), reused 0" in fresh
        for name in (MANIFEST_NAME, LEDGER_NAME, REPORT_NAME):
            assert (out / name).is_file()

        assert main(_sweep_argv(tmp_path, "--resume", out)) == 0
        resumed = capsys.readouterr().out
        assert "Resuming sweep" in resumed
        assert "executed 0 new simulation run(s), reused 2" in resumed

    def test_resume_ignores_drifted_flags(self, tmp_path, capsys):
        out = tmp_path / "sweep"
        assert main(_sweep_argv(tmp_path, "--out", out)) == 0
        capsys.readouterr()
        # The manifest pins the grid; the drifted --policies is ignored.
        argv = _sweep_argv(tmp_path, "--resume", out)
        argv[argv.index("--policies") + 1] = "drf"
        assert main(argv) == 0
        resumed = capsys.readouterr().out
        assert "executed 0 new simulation run(s), reused 2" in resumed


class TestFlagErrors:
    def test_fresh_into_existing_sweep_dir_refused(self, tmp_path, capsys):
        out = tmp_path / "sweep"
        assert main(_sweep_argv(tmp_path, "--out", out)) == 0
        capsys.readouterr()
        assert main(_sweep_argv(tmp_path, "--out", out)) == 2
        assert "--resume" in capsys.readouterr().err

    def test_resume_without_manifest_refused(self, tmp_path, capsys):
        assert main(_sweep_argv(tmp_path, "--resume", tmp_path / "nope")) == 2
        assert MANIFEST_NAME in capsys.readouterr().err

    def test_unknown_policy_refused(self, tmp_path, capsys):
        argv = _sweep_argv(tmp_path, "--out", tmp_path / "sweep")
        argv[argv.index("--policies") + 1] = "fifo,magic"
        assert main(argv) == 2
        assert "magic" in capsys.readouterr().err

    def test_negative_retries_refused(self, tmp_path, capsys):
        argv = _sweep_argv(tmp_path, "--out", tmp_path / "sweep")
        argv += ["--retries", "-1"]
        assert main(argv) == 2
        assert "--retries" in capsys.readouterr().err


class TestQuarantineExitCode:
    def test_poison_cell_exits_nonzero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_RAISE_SPEC", "fifo:s1")
        argv = _sweep_argv(tmp_path, "--out", tmp_path / "sweep")
        argv += ["--retries", "0"]
        assert main(argv) == 1
        out = capsys.readouterr().out
        assert "quarantined 1" in out
        assert "report:" in out


class TestInterruptExitCode:
    def test_sigint_mid_sweep_exits_130(self, tmp_path, capsys, monkeypatch):
        from repro.sweep import supervisor as supervisor_module

        real = supervisor_module._execute_attempt

        def fake(spec, config, notify=None):
            if spec.label() == "coda:s1":
                raise KeyboardInterrupt
            return real(spec, config, notify)

        monkeypatch.setattr(supervisor_module, "_execute_attempt", fake)
        out = tmp_path / "sweep"
        assert main(_sweep_argv(tmp_path, "--out", out)) == 130
        captured = capsys.readouterr()
        assert "interrupted" in captured.err
        assert "--resume" in captured.err
        assert (out / REPORT_NAME).is_file()

    def test_non_positive_checkpoint_interval_refused(self, tmp_path, capsys):
        argv = _sweep_argv(tmp_path, "--out", tmp_path / "sweep")
        argv += ["--checkpoint-interval", "0"]
        assert main(argv) == 2
        assert "--checkpoint-interval" in capsys.readouterr().err
