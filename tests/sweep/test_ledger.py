"""The crash-safe ledger: durability, replay, and tail tolerance."""

import json

import pytest

from repro.sweep import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_PENDING,
    STATUS_RUNNING,
    LedgerEntry,
    LedgerError,
    SweepLedger,
)


class TestAppendReplayRoundTrip:
    def test_entries_survive_byte_identically(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with SweepLedger(path) as ledger:
            ledger.append("k1", "fifo:s0", STATUS_PENDING)
            ledger.append("k1", "fifo:s0", STATUS_RUNNING, attempt=1)
            ledger.append("k1", "fifo:s0", STATUS_OK, attempt=1)
        state = SweepLedger.replay(path)
        assert [e.status for e in state.entries] == [
            STATUS_PENDING, STATUS_RUNNING, STATUS_OK,
        ]
        assert [e.seq for e in state.entries] == [0, 1, 2]
        assert state.dropped_tail == 0

    def test_last_entry_per_key_wins(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with SweepLedger(path) as ledger:
            ledger.append("k1", "a", STATUS_RUNNING, attempt=1)
            ledger.append("k2", "b", STATUS_OK, attempt=1)
            ledger.append("k1", "a", STATUS_FAILED, attempt=1, detail="boom")
        state = SweepLedger.replay(path)
        assert state.last["k1"].status == STATUS_FAILED
        assert state.last["k1"].detail == "boom"
        assert state.complete_keys() == ["k2"]

    def test_cached_counts_as_complete(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with SweepLedger(path) as ledger:
            ledger.append("k1", "a", STATUS_CACHED)
        assert SweepLedger.replay(path).complete_keys() == ["k1"]

    def test_missing_file_replays_empty(self, tmp_path):
        state = SweepLedger.replay(tmp_path / "absent.jsonl")
        assert state.entries == [] and state.last == {}

    def test_detail_is_truncated(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with SweepLedger(path) as ledger:
            entry = ledger.append(
                "k", "a", STATUS_FAILED, detail="x" * 10_000
            )
        assert len(entry.detail) == 500
        assert len(SweepLedger.replay(path).entries[0].detail) == 500


class TestCrashTolerance:
    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with SweepLedger(path) as ledger:
            ledger.append("k1", "a", STATUS_OK, attempt=1)
            ledger.append("k2", "b", STATUS_RUNNING, attempt=1)
        whole = path.read_text()
        path.write_text(whole[: len(whole) - 20])  # crash mid-append
        state = SweepLedger.replay(path)
        assert [e.key for e in state.entries] == ["k1"]
        assert state.dropped_tail == 1

    def test_garbage_mid_file_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        good = LedgerEntry(seq=0, key="k", label="a", status=STATUS_OK)
        path.write_text("not json at all\n" + good.to_json() + "\n")
        with pytest.raises(LedgerError, match="corrupt"):
            SweepLedger.replay(path)

    def test_unknown_status_line_counts_as_damage(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        bogus = json.dumps(
            {"seq": 0, "key": "k", "label": "a", "status": "exploded"}
        )
        path.write_text(bogus + "\n")
        state = SweepLedger.replay(path)
        assert state.entries == [] and state.dropped_tail == 1

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        good = LedgerEntry(seq=0, key="k", label="a", status=STATUS_OK)
        path.write_text("\n" + good.to_json() + "\n\n")
        assert len(SweepLedger.replay(path).entries) == 1


class TestResume:
    def test_resume_continues_sequence(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with SweepLedger(path) as ledger:
            ledger.append("k1", "a", STATUS_OK, attempt=1)
        with SweepLedger.resume(path) as ledger:
            entry = ledger.append("k2", "b", STATUS_PENDING)
        assert entry.seq == 1
        assert [e.seq for e in SweepLedger.replay(path).entries] == [0, 1]

    def test_resume_of_missing_file_starts_at_zero(self, tmp_path):
        with SweepLedger.resume(tmp_path / "new.jsonl") as ledger:
            assert ledger.append("k", "a", STATUS_PENDING).seq == 0


class TestEntryValidation:
    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError, match="status"):
            LedgerEntry(seq=0, key="k", label="a", status="nope")

    def test_json_round_trip(self):
        entry = LedgerEntry(
            seq=7, key="k", label="coda:s1", status=STATUS_FAILED,
            attempt=2, detail="worker crashed",
        )
        assert LedgerEntry.from_line(entry.to_json()) == entry
