"""SupervisorConfig validation and the deterministic backoff schedule."""

import pytest

from repro.sweep import SupervisorConfig


class TestValidation:
    def test_defaults_are_valid(self):
        config = SupervisorConfig()
        assert config.max_retries == 2
        assert config.run_timeout_s is None

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            SupervisorConfig(max_retries=-1)

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ValueError, match="run_timeout_s"):
            SupervisorConfig(run_timeout_s=0.0)

    def test_heartbeat_timeout_must_exceed_interval(self):
        with pytest.raises(ValueError, match="heartbeat_timeout_s"):
            SupervisorConfig(
                heartbeat_interval_s=1.0, heartbeat_timeout_s=0.5
            )

    def test_cap_below_base_rejected(self):
        with pytest.raises(ValueError, match="backoff_cap_s"):
            SupervisorConfig(backoff_base_s=10.0, backoff_cap_s=1.0)

    def test_spawn_failure_limit_positive(self):
        with pytest.raises(ValueError, match="spawn_failure_limit"):
            SupervisorConfig(spawn_failure_limit=0)


class TestBackoff:
    def test_deterministic_across_instances(self):
        a = SupervisorConfig(seed=3)
        b = SupervisorConfig(seed=3)
        for failures in (1, 2, 3):
            assert a.backoff_s("coda:s0", failures) == b.backoff_s(
                "coda:s0", failures
            )

    def test_seed_and_label_perturb_jitter(self):
        base = SupervisorConfig(seed=0).backoff_s("coda:s0", 1)
        assert SupervisorConfig(seed=1).backoff_s("coda:s0", 1) != base
        assert SupervisorConfig(seed=0).backoff_s("fifo:s0", 1) != base

    def test_exponential_growth_and_cap(self):
        config = SupervisorConfig(
            backoff_base_s=1.0, backoff_cap_s=4.0, backoff_jitter=0.0
        )
        assert config.backoff_s("x", 1) == 1.0
        assert config.backoff_s("x", 2) == 2.0
        assert config.backoff_s("x", 3) == 4.0
        assert config.backoff_s("x", 4) == 4.0  # capped

    def test_jitter_bounded(self):
        config = SupervisorConfig(
            backoff_base_s=1.0, backoff_cap_s=1.0, backoff_jitter=0.5
        )
        delay = config.backoff_s("x", 1)
        assert 1.0 <= delay <= 1.5

    def test_zero_failures_or_base_means_no_delay(self):
        assert SupervisorConfig().backoff_s("x", 0) == 0.0
        assert SupervisorConfig(backoff_base_s=0.0).backoff_s("x", 3) == 0.0
