"""The worker supervisor's failure paths.

Chaos is injected through the ``REPRO_TEST_*`` environment hooks, which
spawned workers inherit; scenarios are tiny (spawn overhead dominates),
and every surviving result is asserted byte-identical to a plain serial
execution — supervision must never perturb what a run computes.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.scenarios import grid_specs, small_scenario
from repro.metrics.serialize import run_result_to_dict
from repro.parallel import SimPool, serial_map
from repro.checkpoint import execute_with_checkpoints
from repro.sweep import (
    OUTCOME_OK,
    OUTCOME_QUARANTINED,
    SupervisorConfig,
    SupervisorInterrupted,
    cell_checkpoint_dir,
    run_supervised,
)
from repro.sweep import supervisor as supervisor_module


def _dumps(result):
    return json.dumps(run_result_to_dict(result), sort_keys=True)


def _payload_dumps(payload):
    return json.dumps(payload, sort_keys=True)


@pytest.fixture
def specs():
    scenario = small_scenario(duration_days=0.01, nodes=4, seed=1)
    return grid_specs(scenario, schedulers=("fifo", "coda"), seeds=(1,))


#: Fast retry schedule so failure tests don't sleep through real backoff.
_FAST = dict(backoff_base_s=0.01, heartbeat_interval_s=0.2)


class TestSerialPath:
    def test_jobs1_matches_serial_map(self, specs):
        outcomes = run_supervised(specs, jobs=1)
        serial = serial_map(specs)
        assert [o.status for o in outcomes] == [OUTCOME_OK, OUTCOME_OK]
        for outcome, result in zip(outcomes, serial):
            assert _payload_dumps(outcome.payload) == _dumps(result)

    def test_poison_spec_quarantined_after_max_retries(
        self, specs, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_RAISE_SPEC", "fifo:s1")
        config = SupervisorConfig(max_retries=2, **_FAST)
        outcomes = run_supervised(specs, jobs=1, config=config)
        poisoned, healthy = outcomes
        assert poisoned.status == OUTCOME_QUARANTINED
        assert poisoned.attempts == 3  # 1 try + 2 retries
        assert len(poisoned.failures) == 3
        assert "injected failure" in poisoned.last_failure
        assert healthy.status == OUTCOME_OK
        assert _payload_dumps(healthy.payload) == _dumps(
            serial_map([specs[1]])[0]
        )

    def test_transient_failure_retried_to_success(
        self, specs, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_RAISE_SPEC", "fifo:s1")
        monkeypatch.setenv("REPRO_TEST_CRASH_ONCE_DIR", str(tmp_path))
        config = SupervisorConfig(max_retries=2, **_FAST)
        outcomes = run_supervised(specs, jobs=1, config=config)
        assert [o.status for o in outcomes] == [OUTCOME_OK, OUTCOME_OK]
        assert outcomes[0].attempts == 2
        for outcome, result in zip(outcomes, serial_map(specs)):
            assert _payload_dumps(outcome.payload) == _dumps(result)

    def test_events_journal_the_lifecycle(self, specs, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_RAISE_SPEC", "fifo:s1")
        events = []
        config = SupervisorConfig(max_retries=0, **_FAST)
        run_supervised(specs, jobs=1, config=config, on_event=events.append)
        kinds = [(e.kind, e.label) for e in events]
        assert ("attempt", "fifo:s1") in kinds
        assert ("failure", "fifo:s1") in kinds
        assert ("quarantine", "fifo:s1") in kinds
        assert ("ok", "coda:s1") in kinds

    def test_rejects_non_positive_jobs(self, specs):
        with pytest.raises(ValueError, match="jobs"):
            run_supervised(specs, jobs=0)


class TestSpawnedPath:
    def test_worker_sigkilled_mid_run_is_retried(
        self, specs, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_CRASH_SPEC", "fifo:s1")
        monkeypatch.setenv("REPRO_TEST_CRASH_MODE", "kill")
        monkeypatch.setenv("REPRO_TEST_CRASH_ONCE_DIR", str(tmp_path))
        config = SupervisorConfig(max_retries=2, **_FAST)
        outcomes = run_supervised(specs, jobs=2, config=config)
        crashed, healthy = outcomes
        assert crashed.status == OUTCOME_OK
        assert crashed.attempts == 2
        assert "worker crashed" in crashed.failures[0]
        assert healthy.status == OUTCOME_OK
        for outcome, result in zip(outcomes, serial_map(specs)):
            assert _payload_dumps(outcome.payload) == _dumps(result)

    def test_run_timeout_kills_and_retries(
        self, specs, tmp_path, monkeypatch
    ):
        # "hang" keeps heartbeats flowing while the run never finishes —
        # only the run timeout can catch it.
        monkeypatch.setenv("REPRO_TEST_CRASH_SPEC", "coda:s1")
        monkeypatch.setenv("REPRO_TEST_CRASH_MODE", "hang")
        monkeypatch.setenv("REPRO_TEST_CRASH_ONCE_DIR", str(tmp_path))
        config = SupervisorConfig(
            max_retries=1, run_timeout_s=3.0, **_FAST
        )
        outcomes = run_supervised(specs, jobs=2, config=config)
        healthy, hung = outcomes
        assert hung.status == OUTCOME_OK
        assert hung.attempts == 2
        assert "exceeded timeout" in hung.failures[0]
        assert healthy.status == OUTCOME_OK
        for outcome, result in zip(outcomes, serial_map(specs)):
            assert _payload_dumps(outcome.payload) == _dumps(result)

    def test_silent_worker_presumed_hung_and_killed(
        self, specs, tmp_path, monkeypatch
    ):
        # SIGSTOP freezes the heartbeat thread too: liveness detection,
        # not the run timeout, must reap this one.
        monkeypatch.setenv("REPRO_TEST_CRASH_SPEC", "fifo:s1")
        monkeypatch.setenv("REPRO_TEST_CRASH_MODE", "stop")
        monkeypatch.setenv("REPRO_TEST_CRASH_ONCE_DIR", str(tmp_path))
        config = SupervisorConfig(
            max_retries=1,
            heartbeat_interval_s=0.2,
            heartbeat_timeout_s=2.0,
            backoff_base_s=0.01,
        )
        outcomes = run_supervised(specs, jobs=2, config=config)
        stopped = outcomes[0]
        assert stopped.status == OUTCOME_OK
        assert stopped.attempts == 2
        assert "no heartbeat" in stopped.failures[0]

    def test_poison_spec_quarantined_but_batch_completes(
        self, specs, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_CRASH_SPEC", "fifo:s1")
        monkeypatch.setenv("REPRO_TEST_CRASH_MODE", "kill")
        config = SupervisorConfig(max_retries=1, **_FAST)
        outcomes = run_supervised(specs, jobs=2, config=config)
        poisoned, healthy = outcomes
        assert poisoned.status == OUTCOME_QUARANTINED
        assert poisoned.attempts == 2
        assert poisoned.payload is None
        assert healthy.status == OUTCOME_OK
        assert _payload_dumps(healthy.payload) == _dumps(
            serial_map([specs[1]])[0]
        )

    def test_spawn_failures_degrade_to_serial(self, specs, monkeypatch):
        def broken_launch(context, spec, config):
            raise OSError("fork: resource temporarily unavailable")

        monkeypatch.setattr(supervisor_module, "_launch", broken_launch)
        events = []
        config = SupervisorConfig(
            max_retries=0, spawn_failure_limit=2, poll_interval_s=0.01,
            **_FAST,
        )
        outcomes = run_supervised(
            specs, jobs=2, config=config, on_event=events.append
        )
        assert [e.kind for e in events].count("degrade") == 1
        assert "spawn" in next(
            e.reason for e in events if e.kind == "degrade"
        )
        # The serial fallback still completed every run, with the
        # aborted spawn attempts un-charged.
        assert [o.status for o in outcomes] == [OUTCOME_OK, OUTCOME_OK]
        assert [o.attempts for o in outcomes] == [1, 1]
        for outcome, result in zip(outcomes, serial_map(specs)):
            assert _payload_dumps(outcome.payload) == _dumps(result)


class TestSimPoolIntegration:
    def test_supervised_pool_matches_serial(self, specs):
        pool = SimPool(jobs=2, supervisor=SupervisorConfig(**_FAST))
        results = pool.map(specs)
        for result, expected in zip(results, serial_map(specs)):
            assert _dumps(result) == _dumps(expected)

    def test_quarantine_raises_because_map_promises_results(
        self, specs, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_CRASH_SPEC", "fifo:s1")
        monkeypatch.setenv("REPRO_TEST_CRASH_MODE", "kill")
        pool = SimPool(
            jobs=2,
            supervisor=SupervisorConfig(max_retries=0, **_FAST),
        )
        with pytest.raises(RuntimeError, match="quarantined"):
            pool.map(specs)


class TestCheckpointAwareRetry:
    """Retries resume from the cell's newest checkpoint, byte-identically."""

    def _config(self, root, **extra):
        return SupervisorConfig(
            checkpoint_dir=str(root),
            max_retries=2,
            **_FAST,
            **extra,
        )

    def test_preseeded_checkpoint_restored_and_result_identical(
        self, specs, tmp_path
    ):
        spec = specs[1]  # coda:s1 — the long cell
        cell = cell_checkpoint_dir(str(tmp_path), spec.label())
        execute_with_checkpoints(
            spec, checkpoint_dir=cell, checkpoint_every_events=40
        )
        events = []
        outcomes = run_supervised(
            specs, jobs=1, config=self._config(tmp_path),
            on_event=events.append,
        )
        assert [o.status for o in outcomes] == [OUTCOME_OK, OUTCOME_OK]
        restored = [e for e in events if e.kind == "restored"]
        assert [e.label for e in restored] == [spec.label()]
        assert "ckpt-" in restored[0].reason
        for outcome, result in zip(outcomes, serial_map(specs)):
            assert _payload_dumps(outcome.payload) == _dumps(result)

    def test_damaged_checkpoint_falls_back_to_scratch(self, specs, tmp_path):
        spec = specs[1]
        cell = Path(cell_checkpoint_dir(str(tmp_path), spec.label()))
        cell.mkdir(parents=True)
        (cell / "ckpt-000000000120.json").write_text("garbage")
        events = []
        outcomes = run_supervised(
            specs, jobs=1, config=self._config(tmp_path),
            on_event=events.append,
        )
        assert [o.status for o in outcomes] == [OUTCOME_OK, OUTCOME_OK]
        fallback = [e for e in events if e.kind == "checkpoint-fallback"]
        assert [e.label for e in fallback] == [spec.label()]
        assert "starting from scratch" in fallback[0].reason
        assert not any(e.kind == "restored" for e in events)
        for outcome, result in zip(outcomes, serial_map(specs)):
            assert _payload_dumps(outcome.payload) == _dumps(result)

    def test_midrun_kill_resumes_from_checkpoint(
        self, specs, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_CRASH_SPEC", "coda:s1")
        monkeypatch.setenv("REPRO_TEST_CRASH_MODE", "midrun")
        monkeypatch.setenv("REPRO_TEST_CRASH_EVENT", "120")
        monkeypatch.setenv("REPRO_TEST_CRASH_ONCE_DIR", str(tmp_path / "once"))
        events = []
        config = self._config(
            tmp_path / "ckpts", checkpoint_every_events=40
        )
        outcomes = run_supervised(
            specs, jobs=2, config=config, on_event=events.append
        )
        healthy, crashed = outcomes
        assert crashed.status == OUTCOME_OK
        assert crashed.attempts == 2
        assert "worker crashed" in crashed.failures[0]
        restored = [e for e in events if e.kind == "restored"]
        assert [e.label for e in restored] == ["coda:s1"]
        assert healthy.status == OUTCOME_OK
        for outcome, result in zip(outcomes, serial_map(specs)):
            assert _payload_dumps(outcome.payload) == _dumps(result)


class TestInterrupt:
    def test_serial_interrupt_raises_with_partial_outcomes(
        self, specs, monkeypatch
    ):
        real = supervisor_module._execute_attempt

        def fake(spec, config, notify=None):
            if spec.label() == "coda:s1":
                raise KeyboardInterrupt
            return real(spec, config, notify)

        monkeypatch.setattr(supervisor_module, "_execute_attempt", fake)
        with pytest.raises(SupervisorInterrupted) as info:
            run_supervised(specs, jobs=1)
        first, unsettled = info.value.outcomes
        assert first.status == OUTCOME_OK
        assert unsettled.status == ""  # left for the service to journal
