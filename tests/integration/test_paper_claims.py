"""End-to-end reproduction of the paper's evaluation claims.

One shared half-day paper-scale run per policy (module-scoped), with the
Sec. VI claims asserted as *shapes*: who wins, and by roughly what factor.
The exact magnitudes live in EXPERIMENTS.md; the bounds here are loose
enough to survive seed changes but tight enough that a regression in any
CODA component fails them.
"""

import pytest

from repro.core.coda import CodaScheduler
from repro.experiments.runner import RunResult
from repro.experiments.scenarios import paper_scale_scenario, run_scenario
from repro.metrics.stats import fraction_at_most, fraction_exceeding, mean
from repro.schedulers.drf import DrfScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.workload.job import JobKind

DURATION_DAYS = 0.5
SEED = 3


@pytest.fixture(scope="module")
def results():
    out = {}
    for factory in (FifoScheduler, DrfScheduler, CodaScheduler):
        scenario = paper_scale_scenario(duration_days=DURATION_DAYS, seed=SEED)
        result = run_scenario(scenario, factory())
        out[result.scheduler_name] = result
    return out


def _gpu_queueing(result: RunResult):
    return result.collector.queueing_times(
        JobKind.GPU, include_unstarted_until=result.horizon_s
    )


def _cpu_queueing(result: RunResult):
    return result.collector.queueing_times(
        JobKind.CPU, include_unstarted_until=result.horizon_s
    )


def _busy_active_rate(result: RunResult) -> float:
    collector = result.collector
    paired = zip(
        collector.gpu_active_rate.points, collector.gpu_queue_depth.points
    )
    return mean([rate for (_, rate), (_, depth) in paired if depth > 0])


class TestFig10Utilization:
    def test_coda_beats_baselines_by_a_wide_margin(self, results):
        """Fig. 10: 45.4 / 44.7 / 62.1 % — CODA wins by ~17 points."""
        fifo = results["fifo"].collector.gpu_utilization.mean()
        drf = results["drf"].collector.gpu_utilization.mean()
        coda = results["coda"].collector.gpu_utilization.mean()
        assert coda - fifo >= 0.15
        assert coda - drf >= 0.15

    def test_baseline_utilization_matches_paper_band(self, results):
        """FIFO and DRF sit in the low-40s like the paper's 45.4/44.7."""
        for name in ("fifo", "drf"):
            util = results[name].collector.gpu_utilization.mean()
            assert 0.30 <= util <= 0.55, name

    def test_fifo_and_drf_utilization_are_close(self, results):
        fifo = results["fifo"].collector.gpu_utilization.mean()
        drf = results["drf"].collector.gpu_utilization.mean()
        assert abs(fifo - drf) <= 0.05

    def test_coda_busy_period_active_rate_is_highest(self, results):
        """Fig. 10: CODA keeps ~91 % of GPUs busy while jobs queue.  If
        CODA never queued a GPU job in this window, the claim holds
        vacuously (and even more strongly)."""
        collector = results["coda"].collector
        contended = [
            rate
            for (_, rate), (_, depth) in zip(
                collector.gpu_active_rate.points,
                collector.gpu_queue_depth.points,
            )
            if depth > 0
        ]
        if contended:
            assert mean(contended) >= 0.80


class TestFragmentation:
    def test_coda_average_fragmentation_below_one_percent(self, results):
        """Sec. VI-C: 'the average fragmentation rate of CODA is less
        than 1 %'."""
        tracker = results["coda"].collector.fragmentation
        average = tracker.fragmentation_rate() * tracker.contended_fraction()
        assert average < 0.01

    def test_baselines_fragment_an_order_of_magnitude_more(self, results):
        """Sec. VI-C: FIFO 14.3 %, DRF 14.6 % vs CODA <1 %."""
        coda_tracker = results["coda"].collector.fragmentation
        coda = (
            coda_tracker.fragmentation_rate()
            * coda_tracker.contended_fraction()
        )
        for name in ("fifo", "drf"):
            tracker = results[name].collector.fragmentation
            avg = tracker.fragmentation_rate() * tracker.contended_fraction()
            assert avg > 5 * max(coda, 1e-4), name

    def test_baselines_fragment_while_queueing(self, results):
        for name in ("fifo", "drf"):
            tracker = results[name].collector.fragmentation
            assert tracker.contended_fraction() > 0.5, name
            assert tracker.fragmentation_rate() > 0.04, name


class TestFig11Queueing:
    def test_coda_starts_most_gpu_jobs_without_queueing(self, results):
        """Fig. 11: '92.1 % of GPU jobs can get resource allocation
        without queuing' under CODA."""
        delays = _gpu_queueing(results["coda"])
        assert fraction_at_most(delays, 1.0) >= 0.85

    def test_baselines_queue_gpu_jobs_heavily(self, results):
        """Fig. 11: FIFO/DRF leave large GPU-job queueing tails."""
        for name in ("fifo", "drf"):
            delays = _gpu_queueing(results[name])
            assert fraction_exceeding(delays, 600.0) >= 0.25, name

    def test_drf_tail_is_lighter_than_fifo(self, results):
        """Fig. 11: DRF 28.9 % vs FIFO 43.1 % over ten minutes."""
        fifo = fraction_exceeding(_gpu_queueing(results["fifo"]), 600.0)
        drf = fraction_exceeding(_gpu_queueing(results["drf"]), 600.0)
        assert drf < fifo

    def test_cpu_jobs_schedule_fast_under_every_policy(self, results):
        """Fig. 2c / Fig. 11: CPU jobs get resources within seconds to
        minutes under all three policies."""
        for name, result in results.items():
            delays = _cpu_queueing(result)
            assert fraction_at_most(delays, 180.0) >= 0.85, name

    def test_coda_cpu_jobs_within_three_minutes(self, results):
        """Fig. 11: 94.5 % of CPU jobs within 3 minutes under CODA."""
        delays = _cpu_queueing(results["coda"])
        assert fraction_at_most(delays, 180.0) >= 0.90


class TestFig13EndToEnd:
    def test_coda_reduces_end_to_end_latency_for_most_common_jobs(self, results):
        fifo = results["fifo"].collector
        coda = results["coda"].collector
        improved, total = 0, 0
        for job_id, fifo_rec in fifo.records.items():
            if fifo_rec.kind is not JobKind.GPU:
                continue
            coda_rec = coda.records.get(job_id)
            if (
                coda_rec is None
                or fifo_rec.end_to_end is None
                or coda_rec.end_to_end is None
            ):
                continue
            total += 1
            if coda_rec.end_to_end <= fifo_rec.end_to_end * 1.05:
                improved += 1
        assert total > 50
        assert improved / total >= 0.7


class TestFig14Tuning:
    def test_adjustment_histogram_shape(self, results):
        """Fig. 14: most jobs gain a few cores (the 1-2-core requesters),
        a sizeable minority loses many (the >10-core requesters)."""
        records = results["coda"].collector.started_records(JobKind.GPU)
        adjustments = [
            r.core_adjustment for r in records if r.core_adjustment is not None
        ]
        assert len(adjustments) > 100
        more = sum(1 for a in adjustments if a >= 1) / len(adjustments)
        fewer = sum(1 for a in adjustments if -20 <= a <= -1) / len(adjustments)
        assert more >= 0.40
        assert 0.10 <= fewer <= 0.45

    def test_throughput_coda_finishes_more_gpu_jobs(self, results):
        assert (
            results["coda"].finished_gpu_jobs
            >= 1.1 * results["fifo"].finished_gpu_jobs
        )


class TestDeterminism:
    def test_identical_seeds_give_identical_results(self):
        outcomes = []
        for _ in range(2):
            scenario = paper_scale_scenario(duration_days=0.1, seed=17)
            result = run_scenario(scenario, CodaScheduler())
            collector = result.collector
            outcomes.append(
                (
                    result.finished_gpu_jobs,
                    result.finished_cpu_jobs,
                    result.preemptions,
                    round(collector.gpu_utilization.mean(), 12),
                    tuple(
                        (job_id, record.finish_time)
                        for job_id, record in sorted(collector.records.items())
                    ),
                )
            )
        assert outcomes[0] == outcomes[1]
