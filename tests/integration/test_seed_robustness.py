"""Seed robustness: the headline shape must not be a seed artifact.

A shorter (quarter-day) paper-scale comparison at a seed the calibration
never looked at.  Bounds are looser than test_paper_claims' — the point is
the *ordering*, not the magnitudes.
"""

import pytest

from repro.core.coda import CodaScheduler
from repro.experiments.scenarios import paper_scale_scenario, run_scenario
from repro.metrics.stats import fraction_at_most
from repro.schedulers.drf import DrfScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.workload.job import JobKind

SEED = 97  # never used anywhere else in the repo


@pytest.fixture(scope="module")
def results():
    out = {}
    for factory in (FifoScheduler, DrfScheduler, CodaScheduler):
        scenario = paper_scale_scenario(duration_days=0.25, seed=SEED)
        result = run_scenario(scenario, factory())
        out[result.scheduler_name] = result
    return out


class TestShapeHoldsOnFreshSeed:
    def test_coda_utilization_wins(self, results):
        coda = results["coda"].collector.gpu_utilization.mean()
        fifo = results["fifo"].collector.gpu_utilization.mean()
        drf = results["drf"].collector.gpu_utilization.mean()
        assert coda > fifo + 0.10
        assert coda > drf + 0.10

    def test_coda_fragments_least(self, results):
        def average_frag(name):
            tracker = results[name].collector.fragmentation
            return tracker.fragmentation_rate() * tracker.contended_fraction()

        assert average_frag("coda") < average_frag("fifo")
        assert average_frag("coda") < average_frag("drf")
        assert average_frag("coda") < 0.03

    def test_coda_queues_least(self, results):
        def no_queue(name):
            result = results[name]
            delays = result.collector.queueing_times(
                JobKind.GPU, include_unstarted_until=result.horizon_s
            )
            return fraction_at_most(delays, 1.0)

        assert no_queue("coda") > no_queue("drf") >= no_queue("fifo") - 0.05
        assert no_queue("coda") > 0.8

    def test_coda_finishes_the_most_training_work(self, results):
        assert (
            results["coda"].finished_gpu_jobs
            >= results["drf"].finished_gpu_jobs
            >= results["fifo"].finished_gpu_jobs
        )
