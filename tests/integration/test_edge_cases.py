"""Degenerate and boundary scenarios every policy must survive."""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NodeConfig, small_cluster
from repro.core.coda import CodaScheduler
from repro.experiments.runner import SimulationRunner
from repro.perfmodel.stages import TrainSetup
from repro.schedulers.drf import DrfScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.workload.job import CpuJob, GpuJob
from repro.workload.tracegen import TraceConfig, generate_trace

ALL_POLICIES = (FifoScheduler, DrfScheduler, CodaScheduler)


def _gpu(job_id, gpus=1, nodes=1, iters=20, submit=0.0):
    return GpuJob(
        job_id=job_id,
        tenant_id=1,
        submit_time=submit,
        model_name="resnet50",
        setup=TrainSetup(nodes, gpus),
        requested_cpus=2,
        total_iterations=iters,
    )


class TestEmptyAndTinyTraces:
    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_empty_trace_runs_clean(self, factory):
        runner = SimulationRunner(
            Cluster(small_cluster(nodes=1)), factory(), sample_interval_s=100.0
        )
        result = runner.run(until=1000.0)
        assert result.finished_gpu_jobs == 0
        assert len(result.collector.gpu_active_rate) == 11

    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_single_job(self, factory):
        runner = SimulationRunner(
            Cluster(small_cluster(nodes=1)), factory(), sample_interval_s=100.0
        )
        runner.submit_at(0.0, _gpu("only", iters=5))
        result = runner.run(until=3600.0)
        assert result.finished_gpu_jobs == 1
        assert runner.cluster.used.is_zero()


class TestOneSidedWorkloads:
    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_cpu_only_trace(self, factory):
        trace = generate_trace(
            TraceConfig(
                duration_days=0.05,
                gpu_jobs_per_day=0.0,
                cpu_jobs_per_day=600.0,
                seed=4,
            )
        )
        runner = SimulationRunner(
            Cluster(small_cluster(nodes=2)), factory(), trace
        )
        result = runner.run(until=trace.config.duration_s + 7200.0)
        assert result.finished_gpu_jobs == 0
        assert result.finished_cpu_jobs > 0

    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_gpu_only_trace(self, factory):
        trace = generate_trace(
            TraceConfig(
                duration_days=0.05,
                gpu_jobs_per_day=200.0,
                cpu_jobs_per_day=0.0,
                seed=4,
            )
        )
        runner = SimulationRunner(
            Cluster(small_cluster(nodes=4)), factory(), trace
        )
        result = runner.run(until=trace.config.duration_s + 12 * 3600.0)
        assert result.finished_cpu_jobs == 0
        assert result.finished_gpu_jobs > 0


class TestOverSizedJobs:
    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_job_too_big_for_cluster_queues_forever(self, factory):
        """An 8-GPU-per-node job on a 4-GPU cluster must neither crash nor
        block the jobs behind a *different* queue."""
        runner = SimulationRunner(
            Cluster(small_cluster(nodes=2)), factory(), sample_interval_s=100.0
        )
        runner.submit_at(0.0, _gpu("whale", gpus=8))
        runner.submit_at(
            1.0,
            CpuJob(job_id="ok", tenant_id=2, submit_time=1.0, cores=2,
                   duration_s=10.0),
        )
        result = runner.run(until=3600.0)
        assert result.collector.records["whale"].first_start is None
        assert result.collector.records["ok"].finish_time is not None

    def test_coda_slims_a_core_hungry_job_onto_a_tight_cluster(self):
        """CODA's ladder places an AlexNet 1N4G job even when cores are
        scarce, instead of queueing it forever."""
        cluster = Cluster(
            ClusterConfig(node_groups=((1, NodeConfig(cores=10, gpus=4)),))
        )
        runner = SimulationRunner(cluster, CodaScheduler(), sample_interval_s=100.0)
        runner.submit_at(
            0.0,
            GpuJob(
                job_id="hungry",
                tenant_id=1,
                submit_time=0.0,
                model_name="alexnet",
                setup=TrainSetup(1, 4),
                requested_cpus=2,
                total_iterations=20,
            ),
        )
        result = runner.run(until=7200.0)
        record = result.collector.records["hungry"]
        assert record.first_start is not None
        assert record.final_cpus <= 10


class TestSimultaneousArrivals:
    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_burst_at_the_same_instant_is_deterministic(self, factory):
        outcomes = []
        for _ in range(2):
            runner = SimulationRunner(
                Cluster(small_cluster(nodes=2)), factory(),
                sample_interval_s=100.0,
            )
            for index in range(20):
                runner.submit_at(5.0, _gpu(f"g{index}", iters=10))
            result = runner.run(until=3600.0)
            finish_times = tuple(
                (job_id, record.finish_time)
                for job_id, record in sorted(result.collector.records.items())
            )
            outcomes.append(finish_times)
        assert outcomes[0] == outcomes[1]
