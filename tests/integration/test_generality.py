"""Sec. VI-G — generality on mixed clusters with CPU-only nodes.

The paper argues that on larger private clusters mixing GPU and CPU nodes,
plain DRF starves a mixed-workload tenant's CPU jobs (its GPU usage blows
up its dominant share), while CODA's per-array DRF keeps the two job kinds
independent.  These tests build exactly that situation.
"""

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NodeConfig
from repro.core.coda import CodaScheduler
from repro.experiments.runner import SimulationRunner
from repro.perfmodel.stages import TrainSetup
from repro.schedulers.drf import DrfScheduler
from repro.workload.job import CpuJob, GpuJob


def _mixed_cluster() -> Cluster:
    """Four GPU nodes plus four pure CPU nodes."""
    return Cluster(
        ClusterConfig(
            node_groups=(
                (4, NodeConfig(gpus=4)),
                (4, NodeConfig(gpus=0)),
            )
        )
    )


def _gpu(job_id, tenant, gpus=4, iters=50000):
    return GpuJob(
        job_id=job_id,
        tenant_id=tenant,
        submit_time=0.0,
        model_name="resnet50",
        setup=TrainSetup(1, gpus),
        requested_cpus=4,
        total_iterations=iters,
    )


def _cpu(job_id, tenant, cores=8, duration=600.0, submit=0.0):
    return CpuJob(
        job_id=job_id,
        tenant_id=tenant,
        submit_time=submit,
        cores=cores,
        duration_s=duration,
    )


class TestCpuOnlyNodes:
    def test_cluster_totals_include_cpu_nodes(self):
        cluster = _mixed_cluster()
        assert cluster.total.gpus == 16
        assert cluster.total.cpus == 8 * 28

    def test_coda_uses_cpu_nodes_fully_for_cpu_jobs(self):
        """No GPU-array reservation on GPU-less nodes: CPU jobs can fill
        their full 28 cores."""
        runner = SimulationRunner(
            _mixed_cluster(), CodaScheduler(), sample_interval_s=600.0
        )
        for index in range(16):
            runner.submit_at(0.0, _cpu(f"c{index}", tenant=18, cores=14))
        runner.engine.run(until=1.0)
        cpu_nodes = [n for n in runner.cluster.nodes if n.total_gpus == 0]
        placed_on_cpu_nodes = sum(n.used_cpus for n in cpu_nodes)
        assert placed_on_cpu_nodes == 4 * 28  # all four filled completely

    def test_gpu_jobs_never_placed_on_cpu_nodes(self):
        runner = SimulationRunner(
            _mixed_cluster(), CodaScheduler(), sample_interval_s=600.0
        )
        for index in range(4):
            runner.submit_at(0.0, _gpu(f"g{index}", tenant=1))
        runner.engine.run(until=1.0)
        for node in runner.cluster.nodes:
            if node.total_gpus == 0:
                gpu_jobs_here = [
                    job_id
                    for job_id in node.jobs_here()
                    if job_id.startswith("g")
                ]
                assert gpu_jobs_here == []


class TestMixedTenantFairness:
    """The Sec. VI-G DRF pathology and CODA's fix."""

    def _submit_story(self, runner):
        # Tenant 1 trains heavily: 4 big jobs occupy all 16 GPUs and give
        # tenant 1 a dominant share of 1.0 under plain DRF.
        for index in range(4):
            runner.submit_at(0.0, _gpu(f"g{index}", tenant=1))
        # Tenant 2 saturates the CPU side immediately (burst) and keeps it
        # saturated *with churn* (stream), so the scheduler repeatedly
        # chooses whom to serve next...
        for index in range(40):
            runner.submit_at(
                10.0, _cpu(f"burst{index}", tenant=2, cores=8, duration=600.0)
            )
        for index in range(200):
            runner.submit_at(
                10.0 + index * 15.0,
                _cpu(f"flood{index}", tenant=2, cores=8, duration=600.0),
            )
        # ...and then tenant 1 submits one small CPU job.
        runner.submit_at(30.0, _cpu("victim", tenant=1, cores=8, duration=300.0))

    def test_plain_drf_starves_the_mixed_tenants_cpu_job(self):
        runner = SimulationRunner(
            _mixed_cluster(), DrfScheduler(), sample_interval_s=600.0
        )
        self._submit_story(runner)
        runner.engine.run(until=2500.0)
        record = runner.collector.records["victim"]
        # Every time cores free up, tenant 2 (dominant share from a few
        # CPU cores) beats tenant 1 (dominant share 1.0 from its GPUs):
        # the mixed tenant's CPU job starves as long as the flood lasts.
        assert record.first_start is None

    def test_coda_arrays_keep_cpu_scheduling_independent(self):
        runner = SimulationRunner(
            _mixed_cluster(), CodaScheduler(), sample_interval_s=600.0
        )
        self._submit_story(runner)
        runner.engine.run(until=2500.0)
        record = runner.collector.records["victim"]
        # Inside the CPU array tenant 1 has zero CPU usage, so its job is
        # the first claimant as soon as any CPU-array cores free.
        assert record.first_start is not None
        assert record.queueing_time < 700.0