"""CLI smoke tests."""

import pytest

from repro.cli import main
from repro.workload.traceio import load_trace


class TestRun:
    def test_run_small_coda(self, capsys):
        assert main(["run", "--days", "0.05", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "CODA summary" in out
        assert "GPU utilization" in out

    def test_run_fifo(self, capsys):
        assert main(["run", "--policy", "fifo", "--days", "0.05"]) == 0
        assert "FIFO summary" in capsys.readouterr().out

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["run", "--policy", "magic"])


class TestCompare:
    def test_compare_small(self, capsys):
        assert main(["compare", "--days", "0.05", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "fifo" in out and "drf" in out and "coda" in out


class TestTrace:
    def test_trace_round_trip(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(
            [
                "trace",
                str(path),
                "--days",
                "0.05",
                "--gpu-jobs-per-day",
                "100",
                "--cpu-jobs-per-day",
                "300",
            ]
        ) == 0
        trace = load_trace(path)
        assert len(trace.jobs) > 0
        assert "Wrote" in capsys.readouterr().out


class TestCharacterize:
    def test_characterize_default(self, capsys):
        assert main(["characterize"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out
        assert "optimum: 3 cores" in out

    def test_characterize_alias(self, capsys):
        assert main(["characterize", "Bi-Att-Flow"]) == 0
        assert "bat" in capsys.readouterr().out

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            main(["characterize", "gpt5"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestFaultFlags:
    def test_run_with_mtbf_prints_fault_summary(self, capsys):
        assert main(
            ["run", "--days", "0.05", "--mtbf", "1.5", "--fault-seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "node MTBF 1.5 h" in out
        assert "node failures" in out
        assert "job restarts" in out
        assert "node downtime" in out

    def test_run_without_mtbf_hides_fault_rows(self, capsys):
        assert main(["run", "--days", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "node failures" not in out
