"""CLI smoke tests."""

import pytest

from repro.cli import main
from repro.workload.traceio import load_trace


class TestRun:
    def test_run_small_coda(self, capsys):
        assert main(["run", "--days", "0.05", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "CODA summary" in out
        assert "GPU utilization" in out

    def test_run_fifo(self, capsys):
        assert main(["run", "--policy", "fifo", "--days", "0.05"]) == 0
        assert "FIFO summary" in capsys.readouterr().out

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["run", "--policy", "magic"])


class TestCompare:
    def test_compare_small(self, capsys):
        assert main(["compare", "--days", "0.05", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "fifo" in out and "drf" in out and "coda" in out


class TestCacheFlags:
    def test_run_warm_cache_hit(self, tmp_path, capsys):
        argv = [
            "run", "--days", "0.02", "--seed", "1",
            "--cache-dir", str(tmp_path / "c"), "--cache-stats",
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "1 miss(es)" in cold and "1 store(s)" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "1 hit(s)" in warm and "0 miss(es)" in warm
        # The cached replay renders the identical summary table.
        strip = lambda text: [  # noqa: E731
            line for line in text.splitlines() if "cache:" not in line
        ]
        assert strip(cold) == strip(warm)

    def test_no_cache_disables(self, tmp_path, capsys):
        assert main(
            [
                "run", "--days", "0.02", "--no-cache",
                "--cache-dir", str(tmp_path / "c"), "--cache-stats",
            ]
        ) == 0
        assert "cache: disabled" in capsys.readouterr().out
        assert not (tmp_path / "c").exists()

    def test_audit_run_bypasses_cache(self, tmp_path, capsys):
        assert main(
            [
                "run", "--days", "0.02", "--audit",
                "--cache-dir", str(tmp_path / "c"), "--cache-stats",
            ]
        ) == 0
        assert "cache: disabled" in capsys.readouterr().out
        assert not (tmp_path / "c").exists()

    def test_compare_jobs_and_cache(self, tmp_path, capsys):
        argv = [
            "compare", "--days", "0.02", "--seed", "1", "--jobs", "1",
            "--cache-dir", str(tmp_path / "c"), "--cache-stats",
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "3 miss(es)" in cold and "3 store(s)" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "3 hit(s)" in warm and "0 miss(es)" in warm

    def test_compare_rejects_bad_jobs(self, capsys):
        assert main(["compare", "--days", "0.02", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_compare_jobs_clamped_on_single_cpu(
        self, tmp_path, capsys, monkeypatch
    ):
        # Same rule as the sweep service: an explicit --jobs request
        # degrades to serial on a one-core host unless
        # REPRO_SWEEP_FORCE_SPAWN overrides (results are identical
        # either way; only worker count changes).
        import repro.parallel.pool as pool_module

        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 1)
        monkeypatch.delenv("REPRO_SWEEP_FORCE_SPAWN", raising=False)
        assert main(
            [
                "compare", "--days", "0.02", "--seed", "1", "--jobs", "3",
                "--cache-dir", str(tmp_path / "c"),
            ]
        ) == 0
        assert "clamped to 1" in capsys.readouterr().err


class TestTrace:
    def test_trace_round_trip(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(
            [
                "trace",
                str(path),
                "--days",
                "0.05",
                "--gpu-jobs-per-day",
                "100",
                "--cpu-jobs-per-day",
                "300",
            ]
        ) == 0
        trace = load_trace(path)
        assert len(trace.jobs) > 0
        assert "Wrote" in capsys.readouterr().out


class TestCharacterize:
    def test_characterize_default(self, capsys):
        assert main(["characterize"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out
        assert "optimum: 3 cores" in out

    def test_characterize_alias(self, capsys):
        assert main(["characterize", "Bi-Att-Flow"]) == 0
        assert "bat" in capsys.readouterr().out

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            main(["characterize", "gpt5"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestFaultFlags:
    def test_run_with_mtbf_prints_fault_summary(self, capsys):
        assert main(
            ["run", "--days", "0.05", "--mtbf", "1.5", "--fault-seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "node MTBF 1.5 h" in out
        assert "node failures" in out
        assert "job restarts" in out
        assert "node downtime" in out

    def test_run_without_mtbf_hides_fault_rows(self, capsys):
        assert main(["run", "--days", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "node failures" not in out


class TestResilienceFlags:
    def test_fault_run_prints_resilience_rows(self, capsys):
        assert main(
            ["run", "--days", "0.05", "--mtbf", "1.5", "--fault-seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "quarantines" in out
        assert "quarantine time" in out
        assert "dead jobs" in out
        assert "flap suppressions" in out  # coda is the default policy

    def test_fifo_fault_run_has_no_flap_row(self, capsys):
        assert main(
            ["run", "--policy", "fifo", "--days", "0.05", "--mtbf", "1.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "quarantines" in out
        assert "flap suppressions" not in out

    def test_failure_free_run_hides_resilience_rows(self, capsys):
        assert main(["run", "--days", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "quarantines" not in out
        assert "dead jobs" not in out

    def test_quarantine_threshold_flag_accepted(self, capsys):
        assert main(
            [
                "run", "--days", "0.05", "--mtbf", "0.5",
                "--quarantine-threshold", "1.0", "--max-restarts", "2",
            ]
        ) == 0
        assert "quarantines" in capsys.readouterr().out

    def test_zero_max_restarts_means_unlimited(self, capsys):
        assert main(
            ["run", "--days", "0.05", "--mtbf", "1.0", "--max-restarts", "0"]
        ) == 0
        # Unlimited budget: the ledger row renders and stays empty.
        assert "dead jobs" in capsys.readouterr().out

    def test_negative_max_restarts_rejected(self, capsys):
        assert main(["run", "--days", "0.05", "--max-restarts", "-1"]) == 2
        assert "max-restarts" in capsys.readouterr().err

    def test_non_positive_quarantine_threshold_rejected(self, capsys):
        assert (
            main(["run", "--days", "0.05", "--quarantine-threshold", "0"]) == 2
        )
        assert "quarantine-threshold" in capsys.readouterr().err

    def test_audited_fault_run_passes_iv007(self, capsys):
        assert main(
            [
                "run", "--days", "0.05", "--mtbf", "0.5",
                "--fault-seed", "7", "--audit",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out


class TestCheckpointFlags:
    def test_checkpoint_run_then_restore(self, tmp_path, capsys):
        ckpts = tmp_path / "ckpts"
        argv = [
            "run", "--days", "0.02", "--seed", "1",
            "--checkpoint-dir", str(ckpts), "--checkpoint-interval", "50",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "CODA summary" in first
        written = sorted(p.name for p in ckpts.iterdir())
        assert written and all(n.startswith("ckpt-") for n in written)

        assert main(argv + ["--restore", str(ckpts / written[-1])]) == 0
        resumed = capsys.readouterr().out
        # Resuming from the newest snapshot replays the identical summary.
        assert resumed == first

    def test_damaged_checkpoint_fails_loudly(self, tmp_path, capsys):
        bad = tmp_path / "ckpt-000000000050.json"
        bad.write_text("garbage")
        argv = [
            "run", "--days", "0.02",
            "--checkpoint-dir", str(tmp_path), "--checkpoint-interval", "50",
            "--restore", str(bad),
        ]
        assert main(argv) == 1
        assert "checkpoint" in capsys.readouterr().err

    def test_interval_without_dir_rejected(self, capsys):
        assert main(["run", "--checkpoint-interval", "50"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_dir_without_interval_rejected(self, tmp_path, capsys):
        assert main(["run", "--checkpoint-dir", str(tmp_path)]) == 2
        assert "--checkpoint-interval" in capsys.readouterr().err

    def test_non_positive_interval_rejected(self, tmp_path, capsys):
        argv = [
            "run", "--checkpoint-dir", str(tmp_path),
            "--checkpoint-interval", "0",
        ]
        assert main(argv) == 2
        assert "--checkpoint-interval" in capsys.readouterr().err

    def test_checkpointing_incompatible_with_audit(self, tmp_path, capsys):
        argv = [
            "run", "--audit",
            "--checkpoint-dir", str(tmp_path),
            "--checkpoint-interval", "50",
        ]
        assert main(argv) == 2
        assert "--audit" in capsys.readouterr().err
