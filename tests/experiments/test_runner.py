"""Simulation-runner mechanics: progress, contention, control surface."""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import small_cluster
from repro.experiments.runner import SimulationRunner
from repro.perfmodel.catalog import get_model
from repro.perfmodel.speed import iteration_time
from repro.perfmodel.stages import TrainSetup
from repro.schedulers.fifo import FifoScheduler
from repro.workload.heat import heat_job
from repro.workload.job import CpuJob, GpuJob


def _gpu(job_id, model="resnet50", cpus=3, gpus=1, nodes=1, iters=100, submit=0.0):
    return GpuJob(
        job_id=job_id,
        tenant_id=1,
        submit_time=submit,
        model_name=model,
        setup=TrainSetup(nodes, gpus),
        requested_cpus=cpus,
        total_iterations=iters,
    )


def _cpu(job_id, cores=4, duration=100.0, bw=1.0, heat=False, submit=0.0):
    return CpuJob(
        job_id=job_id,
        tenant_id=2,
        submit_time=submit,
        cores=cores,
        duration_s=duration,
        bw_demand_gbps=bw,
        is_heat=heat,
    )


def _runner(nodes=2):
    cluster = Cluster(small_cluster(nodes=nodes))
    return SimulationRunner(cluster, FifoScheduler(), sample_interval_s=50.0)


class TestGpuJobExecution:
    def test_runtime_matches_performance_model(self):
        runner = _runner()
        job = _gpu("j", cpus=3, iters=100)
        runner.submit_at(0.0, job)
        runner.engine.run()
        profile = get_model("resnet50")
        expected = 100 * iteration_time(profile, TrainSetup(1, 1), 3).total_s
        record = runner.collector.records["j"]
        assert record.processing_time == pytest.approx(expected, rel=1e-6)

    def test_fewer_cores_means_longer_runtime(self):
        slow_runner, fast_runner = _runner(), _runner()
        slow_runner.submit_at(0.0, _gpu("s", cpus=1, iters=100))
        fast_runner.submit_at(0.0, _gpu("f", cpus=3, iters=100))
        slow_runner.engine.run()
        fast_runner.engine.run()
        assert (
            slow_runner.collector.records["s"].processing_time
            > fast_runner.collector.records["f"].processing_time
        )

    def test_multi_node_job_spans_nodes(self):
        runner = _runner()
        runner.submit_at(0.0, _gpu("j", gpus=2, nodes=2, iters=10))
        runner.engine.run(until=1.0)
        allocation = runner.cluster.allocation_of("j")
        assert allocation.num_nodes == 2

    def test_gpu_utilization_published_to_devices(self):
        runner = _runner()
        runner.submit_at(0.0, _gpu("j", cpus=3, iters=1000))
        runner.engine.run(until=10.0)
        node = runner.cluster.nodes[runner.cluster.allocation_of("j").node_ids[0]]
        assert node.mean_active_gpu_utilization() == pytest.approx(
            runner.gpu_job_utilization("j")
        )

    def test_resources_released_on_completion(self):
        runner = _runner()
        runner.submit_at(0.0, _gpu("j", iters=5))
        runner.engine.run()
        assert runner.cluster.used.is_zero()


class TestCpuJobExecution:
    def test_runs_for_its_duration(self):
        runner = _runner()
        runner.submit_at(0.0, _cpu("c", duration=123.0))
        runner.engine.run()
        record = runner.collector.records["c"]
        assert record.processing_time == pytest.approx(123.0)

    def test_queued_when_full(self):
        runner = _runner(nodes=1)
        runner.submit_at(0.0, _cpu("a", cores=28, duration=100.0))
        runner.submit_at(1.0, _cpu("b", cores=28, duration=50.0))
        runner.engine.run()
        record = runner.collector.records["b"]
        assert record.first_start == pytest.approx(100.0)


class TestContentionCoupling:
    def test_heat_job_slows_colocated_nlp_trainer(self):
        """Starting a bandwidth hog mid-flight stretches the trainer's
        completion — the progress-based execution at work."""
        quiet, loud = _runner(nodes=1), _runner(nodes=1)
        for runner in (quiet, loud):
            runner.submit_at(0.0, _gpu("nlp", model="bat", cpus=5, iters=100))
        loud.submit_at(
            10.0, heat_job("heat", 10.0, threads=14, duration_s=100000.0)
        )
        quiet.engine.run()
        loud.engine.run()
        assert (
            loud.collector.records["nlp"].processing_time
            > 1.3 * quiet.collector.records["nlp"].processing_time
        )

    def test_heat_finishing_restores_trainer_speed(self):
        runner = _runner(nodes=1)
        runner.submit_at(0.0, _gpu("nlp", model="bat", cpus=5, iters=200))
        runner.submit_at(0.0, _cpu("heat", cores=14, duration=50.0, bw=110.0, heat=True))
        runner.engine.run(until=10.0)
        slowed = runner._running_gpu["nlp"].speed
        runner.engine.run(until=100.0)
        restored = runner._running_gpu["nlp"].speed
        assert restored > slowed

    def test_throttled_heat_job_runs_longer(self):
        runner = _runner(nodes=1)
        runner.submit_at(0.0, _cpu("heat", cores=8, duration=100.0, bw=100.0, heat=True))
        runner.engine.run(until=1.0)
        node_id = runner.cluster.allocation_of("heat").node_ids[0]
        assert runner.throttle_cpu_job("heat", node_id)
        runner.engine.run()
        record = runner.collector.records["heat"]
        assert record.processing_time > 100.0


class TestControlSurface:
    def test_resize_changes_speed(self):
        runner = _runner()
        runner.submit_at(0.0, _gpu("j", cpus=1, iters=10000))
        runner.engine.run(until=1.0)
        before = runner._running_gpu["j"].speed
        assert runner.resize_gpu_job_cores("j", 3)
        after = runner._running_gpu["j"].speed
        assert after > before

    def test_resize_beyond_node_fails_cleanly(self):
        runner = _runner(nodes=1)
        runner.submit_at(0.0, _gpu("j", cpus=4, iters=10000))
        runner.submit_at(0.0, _cpu("hog", cores=24, duration=10000.0))
        runner.engine.run(until=1.0)
        assert not runner.resize_gpu_job_cores("j", 8)
        assert runner.cluster.allocation_of("j").shares[0].cpus == 4

    def test_resize_unknown_job_returns_false(self):
        runner = _runner()
        assert not runner.resize_gpu_job_cores("ghost", 4)

    def test_halve_cpu_job_cores(self):
        runner = _runner()
        runner.submit_at(0.0, _cpu("c", cores=8, duration=1000.0))
        runner.engine.run(until=1.0)
        runner.halve_cpu_job_cores("c")
        assert runner.cluster.allocation_of("c").shares[0].cpus == 4

    def test_gpu_job_expected_utilization_ignores_contention(self):
        runner = _runner(nodes=1)
        runner.submit_at(0.0, _gpu("nlp", model="bat", cpus=5, iters=10000))
        runner.submit_at(1.0, heat_job("heat", 1.0, threads=14, duration_s=10000.0))
        runner.engine.run(until=5.0)
        assert runner.gpu_job_expected_utilization("nlp") > (
            runner.gpu_job_utilization("nlp")
        )

    def test_preempt_preserves_progress_when_asked(self):
        runner = _runner(nodes=1)
        job = _gpu("j", cpus=3, iters=1000)
        runner.submit_at(0.0, job)
        runner.engine.run(until=500.0)
        runner.preempt_job("j", preserve_progress=True, reason="test")
        runner.engine.run()  # restarts immediately (the cluster is empty)
        record = runner.collector.records["j"]
        assert record.preempt_count == 1
        profile = get_model("resnet50")
        iter_s = iteration_time(profile, TrainSetup(1, 1), 3).total_s
        # Progress preserved and an instant restart: the migration costs
        # no wall time at all.
        assert record.finish_time == pytest.approx(1000 * iter_s, rel=1e-6)

    def test_preempt_without_preserve_restarts_from_zero(self):
        runner = _runner(nodes=1)
        runner.submit_at(0.0, _cpu("c", cores=4, duration=100.0))
        runner.engine.run(until=50.0)
        runner.preempt_job("c", preserve_progress=False, reason="test")
        runner.engine.run()
        record = runner.collector.records["c"]
        assert record.finish_time == pytest.approx(150.0)


class TestSampling:
    def test_samples_collected_on_interval(self):
        runner = _runner()
        runner.submit_at(0.0, _cpu("c", duration=200.0))
        runner.run(until=200.0)
        assert len(runner.collector.gpu_active_rate) == 5

    def test_run_result_summary(self):
        runner = _runner()
        runner.submit_at(0.0, _gpu("g", iters=5))
        runner.submit_at(0.0, _cpu("c", duration=10.0))
        result = runner.run(until=1000.0)
        assert result.finished_gpu_jobs == 1
        assert result.finished_cpu_jobs == 1
        assert result.scheduler_name == "fifo"
        assert result.events_fired > 0

    def test_invalid_sample_interval(self):
        with pytest.raises(ValueError):
            SimulationRunner(
                Cluster(small_cluster(nodes=1)),
                FifoScheduler(),
                sample_interval_s=0.0,
            )
