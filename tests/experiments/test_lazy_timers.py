"""Unit tests for the lazy completion-timer engine and reprice memos.

The parity sweep (tests/schedulers/test_lazy_reprice_parity.py) proves
lazy == eager over whole simulations; these tests pin the individual
mechanisms — stale fire + re-arm, earlier-move cancel + re-arm, the
epoch-fingerprint memo, and the activity-indexed monitor surface — with
hand-computable numbers.
"""

import pytest

from repro import profiling
from repro.cluster.cluster import Cluster
from repro.config import small_cluster
from repro.experiments.runner import SimulationRunner
from repro.perfmodel.speed import iteration_time
from repro.perfmodel.stages import TrainSetup
from repro.schedulers.fifo import FifoScheduler
from repro.workload.job import CpuJob, GpuJob


def _gpu(job_id, cpus=3, iters=100, submit=0.0):
    return GpuJob(
        job_id=job_id,
        tenant_id=1,
        submit_time=submit,
        model_name="resnet50",
        setup=TrainSetup(1, 1),
        requested_cpus=cpus,
        total_iterations=iters,
    )


def _cpu(job_id, cores=4, duration=100.0, submit=0.0):
    return CpuJob(
        job_id=job_id,
        tenant_id=2,
        submit_time=submit,
        cores=cores,
        duration_s=duration,
        bw_demand_gbps=1.0,
    )


def _runner(nodes=2):
    cluster = Cluster(small_cluster(nodes=nodes))
    return SimulationRunner(cluster, FifoScheduler(), sample_interval_s=1e9)


class TestLazyCompletionTimers:
    """One uncontended CPU job (speed exactly 1.0) slowed by stragglers:
    every timestamp below is an exact float."""

    def _straggled_runner(self, heal_after_s):
        runner = _runner()
        runner.submit_at(0.0, _cpu("c", duration=100.0))
        runner.engine.run(until=10.0)
        # Slow to 0.25x at t=10: completion moves 100 -> 10 + 90/0.25.
        runner.apply_cpu_straggler(
            "c", factor=0.25, duration_s=heal_after_s
        )
        return runner

    def test_later_moving_completion_fires_stale_and_rearms(self):
        runner = self._straggled_runner(heal_after_s=1e6)
        record = runner._running_cpu["c"]
        # The old timer (armed at t=100) is deliberately left in place.
        assert record.completion_time == 370.0
        assert record.completion.time == 100.0
        runner.engine.run(until=120.0)
        # It fired stale at t=100 and re-armed at the authoritative time.
        assert runner._stale_timer_fires == 1
        assert "c" in runner._running_cpu
        assert record.completion.time == 370.0
        runner.engine.run(until=500.0)
        assert runner.collector.records["c"].finish_time == 370.0
        assert runner._stale_timer_fires == 1

    def test_earlier_moving_completion_cancels_and_rearms(self):
        runner = self._straggled_runner(heal_after_s=140.0)
        runner.engine.run(until=120.0)  # past the stale fire at t=100
        record = runner._running_cpu["c"]
        assert record.completion.time == 370.0
        # Heal at t=150: work = 10 + 0.25*140 = 45, so the completion
        # moves earlier (150 + 55 = 205 < 370) and must re-arm eagerly.
        runner.engine.run(until=160.0)
        assert record.completion_time == 205.0
        assert record.completion.time == 205.0
        runner.engine.run(until=500.0)
        assert runner.collector.records["c"].finish_time == 205.0
        assert runner._stale_timer_fires == 1

    def test_stale_fires_book_under_their_own_category(self):
        profiler = profiling.enable()
        try:
            runner = self._straggled_runner(heal_after_s=1e6)
            runner.engine.run(until=500.0)
        finally:
            profiling.disable()
        assert profiler.counters["completion-stale"] == 1
        assert "completion-stale" in profiler.timers
        assert runner.collector.records["c"].finish_time == 370.0

    def test_eager_hatch_never_fires_stale(self, monkeypatch):
        monkeypatch.setenv("REPRO_EAGER_RESCHEDULE", "1")
        runner = self._straggled_runner(heal_after_s=1e6)
        record = runner._running_cpu["c"]
        # Eager cancel+reschedule keeps the armed timer authoritative.
        assert record.completion.time == 370.0
        runner.engine.run(until=500.0)
        assert runner._stale_timer_fires == 0
        assert runner.collector.records["c"].finish_time == 370.0


class TestRepriceMemo:
    def _counting_runner(self, monkeypatch):
        calls = []

        def counting(*args, **kwargs):
            calls.append(1)
            return iteration_time(*args, **kwargs)

        monkeypatch.setattr(
            "repro.experiments.runner.iteration_time", counting
        )
        runner = _runner()
        runner.submit_at(0.0, _gpu("j", iters=10**9))
        runner.engine.run(until=10.0)
        return runner, calls

    def test_unchanged_epochs_skip_iteration_time(self, monkeypatch):
        runner, calls = self._counting_runner(monkeypatch)
        node_id = runner.cluster.allocation_of("j").node_ids[0]
        baseline = len(calls)
        runner._refresh_nodes({node_id})
        # Nothing on the node changed since the start-time reprice: the
        # epoch fingerprint hits and the model is not re-evaluated...
        assert len(calls) == baseline
        # ...but progress accrual still happened.
        assert runner._running_gpu["j"].last_update == 10.0

    def test_epoch_bump_invalidates_memo(self, monkeypatch):
        runner, calls = self._counting_runner(monkeypatch)
        node_id = runner.cluster.allocation_of("j").node_ids[0]
        baseline = len(calls)
        # A bandwidth-demand change re-arbitrates grants, bumping the
        # node's monitor epoch: the fingerprint must miss.
        node = runner.cluster.node(node_id)
        node.bandwidth.update_demand("j", 99.0)
        runner._refresh_nodes({node_id})
        assert len(calls) == baseline + 1

    def test_eager_hatch_always_recomputes(self, monkeypatch):
        monkeypatch.setenv("REPRO_EAGER_RESCHEDULE", "1")
        runner, calls = self._counting_runner(monkeypatch)
        node_id = runner.cluster.allocation_of("j").node_ids[0]
        baseline = len(calls)
        runner._refresh_nodes({node_id})
        assert len(calls) == baseline + 1


class TestActivityIndexedMonitor:
    def test_active_set_tracks_cpu_hosts(self):
        runner = _runner()
        assert list(runner.monitor_active_node_ids()) == []
        runner.submit_at(0.0, _cpu("c", duration=50.0))
        runner.engine.run(until=1.0)
        node_id = runner._running_cpu["c"].node_id
        assert list(runner.monitor_active_node_ids()) == [node_id]
        # Only the eliminator revokes membership (after a successful
        # observe found nothing to do); job completion alone keeps the
        # node listed until then.
        runner.engine.run(until=60.0)
        assert "c" not in runner._running_cpu
        assert list(runner.monitor_active_node_ids()) == [node_id]
        runner.monitor_deactivate_node(node_id)
        assert list(runner.monitor_active_node_ids()) == []

    def test_telemetry_outage_activates_node(self):
        runner = _runner()
        runner.begin_telemetry_outage(1, duration_s=60.0)
        assert list(runner.monitor_active_node_ids()) == [1]

    def test_backfill_reconstructs_eager_sample_stamp(self):
        runner = _runner()
        # Ticks at t=40 happened while node 1 was skippable...
        runner.monitor_note_tick(40.0)
        runner.engine.run(until=50.0)
        runner._monitor_activate(1)
        # ...so on activation its MBM stamp reads as refreshed at t=40.
        assert runner.cluster.node(1).bandwidth.sample_age(50.0) == 10.0

    def test_no_backfill_while_node_was_unobservable(self):
        runner = _runner()
        runner.engine.run(until=50.0)
        runner.fail_node(1)  # vetoes back-fill until recovery
        runner.monitor_note_tick(60.0)
        runner._monitor_activate(1)
        assert runner.cluster.node(1).bandwidth.sample_age(60.0) == float(
            "inf"
        )

    def test_eager_hatch_ticks_every_node(self, monkeypatch):
        monkeypatch.setenv("REPRO_EAGER_RESCHEDULE", "1")
        runner = _runner(nodes=3)
        assert list(runner.monitor_active_node_ids()) == [0, 1, 2]
        runner.monitor_deactivate_node(1)
        assert list(runner.monitor_active_node_ids()) == [0, 1, 2]


class TestStaleFiresInRunResult:
    def test_scalar_surfaces_in_run_result(self):
        runner = _runner()
        runner.submit_at(0.0, _cpu("c", duration=100.0))
        runner.engine.run(until=10.0)
        runner.apply_cpu_straggler("c", factor=0.25, duration_s=1e6)
        result = runner.run(until=500.0)
        assert result.stale_timer_fires == 1
        # Stale fires are the only event-count difference vs eager, so
        # this identity is what the parity sweep compares across modes.
        assert result.events_fired > result.stale_timer_fires
