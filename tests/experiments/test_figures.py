"""Figure-layer functions (the deterministic ones)."""

import pytest

from repro.experiments.figures import (
    CHARACTERIZATION_SETUPS,
    eliminator_microbenchmark,
    epsilon_sweep,
    fig3_core_sweep,
    fig5_optimal_cores,
    fig6_bandwidth_demand,
    fig7_contention,
    pcie_colocation,
    table2_profiling_overhead,
    threshold_sweep,
)
from repro.perfmodel.catalog import ALL_MODEL_NAMES


class TestFig3:
    def test_covers_all_models_and_setups(self):
        sweep = fig3_core_sweep(max_cores=8)
        assert set(sweep) == set(ALL_MODEL_NAMES)
        for by_setup in sweep.values():
            assert set(by_setup) == {"1N1G", "1N4G"}
            for series in by_setup.values():
                assert len(series) == 8

    def test_rows_carry_speed_and_util(self):
        sweep = fig3_core_sweep(setups=("1N1G",), max_cores=4)
        cores, speed, util = sweep["resnet50"]["1N1G"][2]
        assert cores == 3
        assert speed > 0
        assert 0 < util <= 1


class TestFig5AndFig6:
    def test_fig5_row_count(self):
        rows = fig5_optimal_cores()
        assert len(rows) == len(ALL_MODEL_NAMES) * len(
            CHARACTERIZATION_SETUPS
        ) * 2

    def test_fig6_demands_positive(self):
        for _, _, _, demand in fig6_bandwidth_demand():
            assert demand > 0


class TestFig7:
    def test_zero_threads_is_baseline(self):
        rows = fig7_contention(heat_threads=(0,))
        assert all(perf == pytest.approx(1.0) for _, _, _, perf in rows)

    def test_performance_monotone_in_threads(self):
        rows = fig7_contention(heat_threads=(0, 8, 16))
        by_model = {}
        for model, threads, _, perf in rows:
            by_model.setdefault(model, []).append((threads, perf))
        for model, series in by_model.items():
            perfs = [perf for _, perf in sorted(series)]
            assert perfs == sorted(perfs, reverse=True), model


class TestPcie:
    def test_has_the_headline_pairs(self):
        rows = pcie_colocation()
        pairs = {(a, b) for a, b, _, _, _ in rows}
        assert ("alexnet", "resnet50") in pairs


class TestTable2:
    def test_all_models_converge_in_at_most_four_steps(self):
        for row in table2_profiling_overhead():
            assert 3 <= row.profiling_steps <= 4

    def test_iterations_scale_with_step_length(self):
        short = {r.model: r.training_iterations for r in table2_profiling_overhead(45.0)}
        default = {r.model: r.training_iterations for r in table2_profiling_overhead(90.0)}
        for model in short:
            assert default[model] == pytest.approx(2 * short[model], abs=2)


class TestAblationHelpers:
    def test_epsilon_sweep_shape(self):
        rows = epsilon_sweep(epsilons=(0.01,))
        assert len(rows) == len(ALL_MODEL_NAMES)
        assert all(0 < ratio <= 1.0 + 1e-9 for _, _, _, _, ratio in rows)

    def test_threshold_sweep_lax_threshold_never_triggers(self):
        rows = threshold_sweep(thresholds=(0.95,))
        threshold, slowdown, level = rows[0]
        assert slowdown > 1.3
        assert level == 1.0

    def test_microbenchmark_is_deterministic(self):
        first = eliminator_microbenchmark(heat_threads=10)
        second = eliminator_microbenchmark(heat_threads=10)
        assert first == second

    def test_microbenchmark_orders_configurations(self):
        outcomes = eliminator_microbenchmark()
        assert (
            outcomes["quiet_node"]
            <= outcomes["with_eliminator"]
            < outcomes["without_eliminator"]
        )
