"""Audit-log capture and persistence."""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NodeConfig, small_cluster
from repro.core.coda import CodaConfig, CodaScheduler
from repro.core.eliminator import EliminatorConfig
from repro.experiments.auditlog import AuditLog
from repro.experiments.runner import SimulationRunner
from repro.perfmodel.stages import TrainSetup
from repro.schedulers.fifo import FifoScheduler
from repro.workload.heat import heat_job
from repro.workload.job import GpuJob


def _gpu(job_id="g1", iters=50, model="resnet50"):
    return GpuJob(
        job_id=job_id,
        tenant_id=1,
        submit_time=0.0,
        model_name=model,
        setup=TrainSetup(1, 1),
        requested_cpus=3,
        total_iterations=iters,
    )


class TestLifecycleCapture:
    def test_full_lifecycle_is_logged(self):
        log = AuditLog()
        runner = SimulationRunner(
            Cluster(small_cluster(nodes=1)), FifoScheduler(),
            sample_interval_s=600.0, audit=log,
        )
        runner.submit_at(0.0, _gpu(iters=5))
        runner.engine.run()
        assert log.timeline("g1") == ["submitted", "started", "finished"]
        finish = log.last("g1")
        assert finish.event == "finished"
        assert finish.detail["queueing_s"] == 0.0
        assert finish.detail["cores_per_node"] == 3

    def test_coda_tuning_shows_as_resizes(self):
        log = AuditLog()
        runner = SimulationRunner(
            Cluster(small_cluster(nodes=1)), CodaScheduler(),
            sample_interval_s=600.0, audit=log,
        )
        runner.submit_at(0.0, _gpu("j", iters=2000, model="alexnet"))
        runner.engine.run(until=900.0)
        resizes = [r for r in log.of_job("j") if r.event == "resized"]
        assert resizes
        assert resizes[-1].detail["cores_per_node"] == 8

    def test_throttle_is_logged_with_level(self):
        log = AuditLog()
        cluster = Cluster(
            ClusterConfig(
                node_groups=((1, NodeConfig(gpus=4, mem_bandwidth_gbps=110.0)),)
            )
        )
        scheduler = CodaScheduler(
            CodaConfig(eliminator=EliminatorConfig(monitor_interval_s=30.0))
        )
        runner = SimulationRunner(
            cluster, scheduler, sample_interval_s=600.0, audit=log
        )
        runner.submit_at(0.0, _gpu("nlp", iters=500, model="bat"))
        runner.submit_at(1.0, heat_job("heat", 1.0, threads=12, tenant_id=18))
        runner.engine.run(until=120.0)
        throttles = log.of_event("throttled")
        assert throttles
        assert throttles[0].job_id == "heat"
        assert throttles[0].detail["level"] < 1.0

    def test_no_audit_means_no_overhead_path(self):
        runner = SimulationRunner(
            Cluster(small_cluster(nodes=1)), FifoScheduler(),
            sample_interval_s=600.0,
        )
        runner.submit_at(0.0, _gpu(iters=5))
        runner.engine.run()  # must not raise with audit=None


class TestQueriesAndPersistence:
    def _sample_log(self):
        log = AuditLog()
        log.record(0.0, "submitted", "a", 1, "gpu")
        log.record(1.0, "started", "a", 1, "gpu", cores_per_node=4)
        log.record(2.0, "submitted", "b", 2, "cpu")
        log.record(9.0, "finished", "a", 1, "gpu", queueing_s=1.0)
        return log

    def test_of_event_and_tenant(self):
        log = self._sample_log()
        assert len(log.of_event("submitted")) == 2
        assert len(log.of_tenant(2)) == 1
        assert len(log) == 4

    def test_unknown_event_rejected(self):
        log = AuditLog()
        with pytest.raises(ValueError):
            log.record(0.0, "exploded", "a", 1, "gpu")
        with pytest.raises(ValueError):
            log.of_event("exploded")

    def test_round_trip(self, tmp_path):
        log = self._sample_log()
        path = tmp_path / "audit.jsonl"
        log.save(path)
        loaded = AuditLog.load(path)
        assert len(loaded) == len(log)
        assert loaded.timeline("a") == log.timeline("a")
        assert loaded.last("a").detail["queueing_s"] == 1.0

    def test_last_of_unknown_job_is_none(self):
        assert AuditLog().last("ghost") is None
