"""Scenario construction and the comparison driver."""

import pytest

from repro.core.coda import CodaConfig
from repro.experiments.scenarios import (
    Scenario,
    default_schedulers,
    paper_scale_scenario,
    run_comparison,
    run_scenario,
    small_scenario,
)
from repro.schedulers.fifo import FifoScheduler
from repro.sim.clock import DAY


class TestScenarioConstruction:
    def test_paper_scale_defaults(self):
        scenario = paper_scale_scenario()
        assert scenario.cluster_config.num_nodes == 80
        assert scenario.cluster_config.total_gpus == 400
        assert scenario.trace_config.gpu_jobs_per_day == 1250.0
        assert scenario.horizon_s == 2 * DAY + 6 * 3600.0

    def test_paper_scale_uncalibrated_uses_raw_rates(self):
        scenario = paper_scale_scenario(calibrated_load=False)
        assert scenario.trace_config.gpu_jobs_per_day == pytest.approx(
            25000.0 / 30.0
        )

    def test_small_scenario_scales_rates_with_nodes(self):
        small = small_scenario(nodes=8)
        smaller = small_scenario(nodes=4)
        assert small.trace_config.gpu_jobs_per_day == pytest.approx(
            2 * smaller.trace_config.gpu_jobs_per_day
        )

    def test_builders_are_fresh_each_call(self):
        scenario = small_scenario()
        assert scenario.build_cluster() is not scenario.build_cluster()
        first = scenario.build_trace()
        second = scenario.build_trace()
        assert [j.job_id for j in first.jobs] == [j.job_id for j in second.jobs]


class TestDrivers:
    def test_default_schedulers_cover_all_policies(self):
        factories = default_schedulers()
        assert set(factories) == {"fifo", "drf", "coda"}
        for factory in factories.values():
            assert factory().name in {"fifo", "drf", "coda"}

    def test_coda_config_reaches_the_factory(self):
        factories = default_schedulers(CodaConfig(reserved_cores=10))
        assert factories["coda"]().config.reserved_cores == 10

    def test_run_scenario_returns_summary(self):
        scenario = small_scenario(duration_days=0.05, nodes=4, seed=2)
        result = run_scenario(scenario, FifoScheduler())
        assert result.scheduler_name == "fifo"
        assert result.horizon_s == scenario.horizon_s

    def test_run_comparison_runs_identical_traces(self):
        scenario = small_scenario(duration_days=0.05, nodes=4, seed=2)
        results = run_comparison(scenario)
        assert set(results) == {"fifo", "drf", "coda"}
        submitted = {
            name: sorted(result.collector.records)
            for name, result in results.items()
        }
        assert submitted["fifo"] == submitted["drf"] == submitted["coda"]


class TestFaultScenarios:
    def test_default_scenario_has_no_injector(self):
        from repro.experiments.scenarios import small_scenario

        scenario = small_scenario(duration_days=0.02)
        assert scenario.fault_config is None
        assert scenario.build_fault_injector() is None

    def test_with_faults_builds_fresh_injectors(self):
        from repro.experiments.scenarios import small_scenario
        from repro.faults import FaultConfig

        scenario = small_scenario(duration_days=0.02).with_faults(
            FaultConfig(node_mtbf_s=3600.0)
        )
        first, second = (
            scenario.build_fault_injector(),
            scenario.build_fault_injector(),
        )
        assert first is not None and second is not None
        assert first is not second

    def test_inert_config_builds_no_injector(self):
        from repro.experiments.scenarios import small_scenario
        from repro.faults import FaultConfig

        scenario = small_scenario(duration_days=0.02).with_faults(FaultConfig())
        assert scenario.build_fault_injector() is None

    def test_mtbf_sweep_control_point_is_fault_free(self):
        from repro.experiments.scenarios import run_mtbf_sweep, small_scenario

        scenario = small_scenario(duration_days=0.02, nodes=3)
        results = run_mtbf_sweep(scenario, [0.0, 0.25], fault_seed=4)
        control, faulty = results[0.0], results[0.25]
        assert control.collector.faults.node_failures == 0
        assert control.restarts == 0
        assert faulty.collector.faults.node_failures > 0
        assert faulty.node_downtime_s > 0.0


class TestGridSpecs:
    def test_policy_major_order_and_labels(self):
        from repro.experiments.scenarios import grid_specs, small_scenario

        scenario = small_scenario(duration_days=0.02, nodes=3)
        specs = grid_specs(
            scenario, schedulers=("fifo", "coda"), seeds=(1, 2)
        )
        assert [spec.label() for spec in specs] == [
            "fifo:s1", "fifo:s2", "coda:s1", "coda:s2",
        ]
        assert all(spec.scenario is scenario for spec in specs)

    def test_coda_config_threaded_through(self):
        from repro.core.coda import CodaConfig
        from repro.experiments.scenarios import grid_specs, small_scenario

        config = CodaConfig(reserved_cores=3)
        specs = grid_specs(
            small_scenario(duration_days=0.02),
            schedulers=("coda",),
            coda_config=config,
        )
        assert specs[0].coda_config == config
