"""Multi-node job execution details in the runner."""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import small_cluster
from repro.experiments.runner import SimulationRunner
from repro.perfmodel.stages import TrainSetup
from repro.schedulers.fifo import FifoScheduler
from repro.workload.heat import heat_job
from repro.workload.job import GpuJob


def _gang(job_id="gang", iters=5000, cpus=2):
    return GpuJob(
        job_id=job_id,
        tenant_id=1,
        submit_time=0.0,
        model_name="deepspeech",
        setup=TrainSetup(2, 2),
        requested_cpus=cpus,
        total_iterations=iters,
    )


class TestWorstNodePacing:
    def test_contention_on_one_node_slows_the_whole_gang(self):
        """Iterations are paced by the slowest participant: pressure on
        either node slows the job identically."""
        runner_quiet = SimulationRunner(
            Cluster(small_cluster(nodes=2)), FifoScheduler(),
            sample_interval_s=600.0,
        )
        runner_quiet.submit_at(0.0, _gang())
        runner_quiet.engine.run(until=5.0)
        quiet_speed = runner_quiet._running_gpu["gang"].speed

        for hot_node in (0, 1):
            runner = SimulationRunner(
                Cluster(small_cluster(nodes=2)), FifoScheduler(),
                sample_interval_s=600.0,
            )
            runner.submit_at(0.0, _gang())
            runner.engine.run(until=1.0)
            # Inject HEAT directly onto one specific node.
            node = runner.cluster.node(hot_node)
            heat = heat_job("heat", 1.0, threads=14, duration_s=1e6)
            runner.cluster.allocate("heat", [(hot_node, 14, 0)])
            node.register_memory_traffic(
                "heat", heat.bw_demand_gbps, is_cpu_job=True
            )
            runner._refresh_nodes({hot_node})
            hot_speed = runner._running_gpu["gang"].speed
            assert hot_speed < quiet_speed, hot_node

    def test_gang_utilization_published_on_both_nodes(self):
        runner = SimulationRunner(
            Cluster(small_cluster(nodes=2)), FifoScheduler(),
            sample_interval_s=600.0,
        )
        runner.submit_at(0.0, _gang())
        runner.engine.run(until=5.0)
        utils = {
            node.node_id: node.mean_active_gpu_utilization()
            for node in runner.cluster.nodes
        }
        assert utils[0] == pytest.approx(utils[1])

    def test_gang_releases_both_nodes_on_completion(self):
        runner = SimulationRunner(
            Cluster(small_cluster(nodes=2)), FifoScheduler(),
            sample_interval_s=600.0,
        )
        runner.submit_at(0.0, _gang(iters=3))
        runner.engine.run()
        assert runner.cluster.used.is_zero()

    def test_gang_resize_applies_to_every_node(self):
        runner = SimulationRunner(
            Cluster(small_cluster(nodes=2)), FifoScheduler(),
            sample_interval_s=600.0,
        )
        runner.submit_at(0.0, _gang(cpus=1))
        runner.engine.run(until=1.0)
        assert runner.resize_gpu_job_cores("gang", 2)
        allocation = runner.cluster.allocation_of("gang")
        assert [share.cpus for share in allocation.shares] == [2, 2]
