"""Property-based tests on system-level behaviours."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NodeConfig
from repro.perfmodel.catalog import ALL_MODEL_NAMES, get_model
from repro.perfmodel.contention import ContentionState
from repro.perfmodel.speed import iteration_time
from repro.perfmodel.stages import TrainSetup
from repro.schedulers.placement import FreeState, place_cpu_job, place_gpu_job
from repro.workload.arrivals import DiurnalRate, poisson_arrivals
from repro.workload.job import CpuJob, GpuJob

model_names = st.sampled_from(sorted(ALL_MODEL_NAMES))
setups = st.builds(
    TrainSetup,
    num_nodes=st.integers(min_value=1, max_value=3),
    gpus_per_node=st.integers(min_value=1, max_value=4),
)
contentions = st.builds(
    ContentionState,
    bw_grant_ratio=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    node_bw_pressure=st.floats(min_value=0.0, max_value=1.2, allow_nan=False),
    llc_pressure=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    pcie_grant_ratio=st.floats(min_value=0.2, max_value=1.0, allow_nan=False),
)


class TestIterationTimeProperties:
    @given(model_names, setups, st.integers(min_value=1, max_value=28))
    @settings(max_examples=120)
    def test_total_bounds_and_utilization(self, name, setup, cores):
        breakdown = iteration_time(get_model(name), setup, cores)
        assert breakdown.total_s >= breakdown.gpu_s
        assert 0.0 < breakdown.utilization <= 1.0

    @given(model_names, setups, st.integers(min_value=1, max_value=27), contentions)
    @settings(max_examples=120)
    def test_contention_never_speeds_things_up(self, name, setup, cores, state):
        profile = get_model(name)
        quiet = iteration_time(profile, setup, cores).total_s
        loud = iteration_time(profile, setup, cores, state).total_s
        assert loud >= quiet - 1e-9

    @given(model_names, setups, st.integers(min_value=1, max_value=27))
    @settings(max_examples=120)
    def test_prep_time_monotone_in_cores(self, name, setup, cores):
        profile = get_model(name)
        fewer = iteration_time(profile, setup, cores).prep_s
        more = iteration_time(profile, setup, cores + 1).prep_s
        assert more <= fewer + 1e-12


class TestPlacementProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=28),  # free cpus
                st.integers(min_value=0, max_value=8),  # free gpus
            ),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=1, max_value=28),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=120)
    def test_gpu_placement_is_feasible_and_exact(
        self, frees, cpus, gpus, nodes
    ):
        free = FreeState({i: pair for i, pair in enumerate(frees)})
        job = GpuJob(
            job_id="j",
            tenant_id=1,
            submit_time=0.0,
            model_name="resnet50",
            setup=TrainSetup(nodes, gpus),
            requested_cpus=cpus,
            total_iterations=1,
        )
        placements = place_gpu_job(job, free)
        feasible_nodes = [
            i for i, (fc, fg) in enumerate(frees) if fc >= cpus and fg >= gpus
        ]
        if placements is None:
            assert len(feasible_nodes) < nodes
        else:
            assert len(placements) == nodes
            assert len({n for n, _, _ in placements}) == nodes
            for node_id, placed_cpus, placed_gpus in placements:
                assert placed_cpus == cpus and placed_gpus == gpus
                assert node_id in feasible_nodes
            free.commit(placements)  # must not raise

    @given(
        st.lists(
            st.integers(min_value=0, max_value=28), min_size=1, max_size=8
        ),
        st.integers(min_value=1, max_value=28),
    )
    @settings(max_examples=120)
    def test_cpu_placement_picks_tightest_feasible(self, frees, cores):
        free = FreeState({i: (fc, 0) for i, fc in enumerate(frees)})
        job = CpuJob(job_id="c", tenant_id=1, submit_time=0.0, cores=cores)
        placements = place_cpu_job(job, free)
        feasible = [fc for fc in frees if fc >= cores]
        if placements is None:
            assert not feasible
        else:
            node_id = placements[0][0]
            assert frees[node_id] == min(feasible)


class TestClusterAllocationProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=10),
                st.integers(min_value=0, max_value=4),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60)
    def test_allocate_release_conserves_capacity(self, requests):
        cluster = Cluster(
            ClusterConfig(node_groups=((2, NodeConfig(cores=28, gpus=4)),))
        )
        total_before = cluster.total
        placed = []
        for index, (cpus, gpus) in enumerate(requests):
            job_id = f"j{index}"
            node = next(
                (n for n in cluster.nodes if n.can_fit(cpus, gpus)), None
            )
            if node is None:
                continue
            cluster.allocate(job_id, [(node.node_id, cpus, gpus)])
            placed.append(job_id)
        used = cluster.used
        assert used.cpus <= total_before.cpus
        assert used.gpus <= total_before.gpus
        for job_id in placed:
            cluster.release(job_id)
        assert cluster.used.is_zero()
        assert cluster.total == total_before


class TestArrivalProperties:
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.floats(min_value=0.001, max_value=0.2, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_arrivals_sorted_unique_in_window(self, seed, base, amplitude):
        rate = DiurnalRate(base_per_s=base, amplitude=amplitude)
        arrivals = list(
            poisson_arrivals(rate, rate.max_rate, 3600.0, random.Random(seed))
        )
        assert arrivals == sorted(arrivals)
        assert len(set(arrivals)) == len(arrivals)
        assert all(0 <= t < 3600.0 for t in arrivals)
