"""Determinism properties: same seed, same history — faults included.

The engine's (time, priority, seq) total order plus tombstone
cancellation must make any seeded driver — including one that cancels
events from inside callbacks — replay identically.  The same property
must survive the fault injector, whose whole design (named RNG streams,
sorted victim selection) exists to keep it true.
"""

import random

from repro.core.coda import CodaScheduler
from repro.experiments.scenarios import run_scenario, small_scenario
from repro.faults import FaultConfig
from repro.sim.engine import Engine
from repro.sim.events import EventPriority


def _drive(seed: int, steps: int = 400):
    """Random schedule/cancel interleavings, logged as (time, label)."""
    rng = random.Random(seed)
    engine = Engine()
    log = []
    live = []

    def fire(label):
        log.append((engine.now, label))
        # Callbacks themselves reschedule and cancel, the way schedulers do.
        roll = rng.random()
        if roll < 0.3:
            nested = f"{label}+"
            live.append(
                engine.schedule_in(
                    rng.uniform(0.1, 20.0),
                    lambda: fire(nested),
                    priority=rng.choice(list(EventPriority)),
                )
            )
        elif roll < 0.5 and live:
            live.pop(rng.randrange(len(live))).cancel()

    for index in range(steps):
        when = rng.uniform(0.0, 100.0)
        label = f"e{index}"
        handle = engine.schedule(
            when,
            lambda label=label: fire(label),
            priority=rng.choice(list(EventPriority)),
        )
        if rng.random() < 0.25:
            handle.cancel()
        else:
            live.append(handle)
    engine.run()
    assert engine.pending == 0
    return log, engine.now, engine.fired


class TestEngineReplay:
    def test_same_seed_same_fire_order_and_clock(self):
        for seed in (0, 7, 12345):
            assert _drive(seed) == _drive(seed)

    def test_different_seeds_diverge(self):
        assert _drive(1)[0] != _drive(2)[0]


def _fingerprint(result):
    collector = result.collector
    return (
        result.events_fired,
        result.finished_gpu_jobs,
        result.finished_cpu_jobs,
        result.preemptions,
        result.restarts,
        result.node_downtime_s,
        collector.faults.node_failures,
        collector.faults.gpu_failures,
        collector.faults.telemetry_dropouts,
        collector.faults.stragglers,
        collector.faults.lost_gpu_iterations,
        collector.faults.lost_cpu_seconds,
        sorted(
            (job_id, record.finish_time, record.failure_count)
            for job_id, record in collector.records.items()
        ),
    )


def _faulty_scenario():
    return small_scenario(duration_days=0.02, nodes=3).with_faults(
        FaultConfig(
            seed=5,
            node_mtbf_s=1500.0,
            node_mttr_s=200.0,
            gpu_mtbf_s=4000.0,
            gpu_mttr_s=500.0,
            telemetry_mtbf_s=900.0,
            telemetry_outage_s=120.0,
            straggler_interval_s=600.0,
        )
    )


class TestSystemReplay:
    def test_fault_free_run_replays_identically(self):
        scenario = small_scenario(duration_days=0.02, nodes=3)
        first = run_scenario(scenario, CodaScheduler())
        second = run_scenario(scenario, CodaScheduler())
        assert _fingerprint(first) == _fingerprint(second)

    def test_fault_injected_run_replays_identically(self):
        scenario = _faulty_scenario()
        first = run_scenario(scenario, CodaScheduler())
        second = run_scenario(scenario, CodaScheduler())
        assert _fingerprint(first) == _fingerprint(second)
        # All four channels actually fired, so the replay test means
        # something.
        faults = first.collector.faults
        assert faults.node_failures > 0
        assert faults.telemetry_dropouts > 0

    def test_inert_fault_config_changes_nothing(self):
        scenario = small_scenario(duration_days=0.02, nodes=3)
        plain = run_scenario(scenario, CodaScheduler())
        gated = run_scenario(
            scenario.with_faults(FaultConfig()), CodaScheduler()
        )
        assert _fingerprint(plain) == _fingerprint(gated)


class TestResilienceDeterminism:
    """Quarantine schedules are as deterministic as everything else: the
    same fault seed must reproduce the exact span list, and the health
    machinery must be invisible on failure-free runs."""

    def _quarantining_run(self):
        from repro.experiments.runner import SimulationRunner
        from repro.health import HealthConfig

        scenario = _faulty_scenario()
        cluster = scenario.build_cluster()
        runner = SimulationRunner(
            cluster,
            CodaScheduler(),
            scenario.build_trace(),
            sample_interval_s=300.0,
            fault_injector=scenario.build_fault_injector(),
            health_config=HealthConfig(quarantine_threshold=1.0),
        )
        result = runner.run(until=scenario.horizon_s)
        return result, tuple(cluster.health.spans), tuple(
            runner.scheduler.dead_jobs
        )

    def test_quarantine_schedule_replays_identically(self):
        first, first_spans, first_dead = self._quarantining_run()
        second, second_spans, second_dead = self._quarantining_run()
        assert _fingerprint(first) == _fingerprint(second)
        assert first_spans == second_spans
        assert first_dead == second_dead
        # The scenario actually quarantines, so the replay test bites.
        assert len(first_spans) > 0
        assert first.quarantines == len(first_spans)
        assert first.quarantine_s > 0

    def test_health_machinery_inert_without_failures(self):
        from repro.experiments.scenarios import run_scenario as _run
        from repro.health import HealthConfig, RestartPolicy

        scenario = small_scenario(duration_days=0.02, nodes=3)
        plain = _run(scenario, CodaScheduler())
        armed = _run(
            scenario,
            CodaScheduler(
                restart_policy=RestartPolicy(max_restarts=1, base_delay_s=600.0)
            ),
            health_config=HealthConfig(quarantine_threshold=0.5),
        )
        assert _fingerprint(plain) == _fingerprint(armed)
        assert armed.quarantines == 0
        assert armed.dead_jobs == 0
