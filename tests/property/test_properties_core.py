"""Property-based tests on the core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.mbm import BandwidthMonitor
from repro.cluster.resources import ResourceVector
from repro.core.tuning import TuningSession
from repro.metrics.stats import cdf_points, percentile
from repro.sim.engine import Engine
from repro.sim.rng import derive_seed

amounts = st.integers(min_value=0, max_value=10_000)
vectors = st.builds(ResourceVector, cpus=amounts, gpus=amounts)


class TestResourceVectorProperties:
    @given(vectors, vectors)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(vectors, vectors)
    def test_add_then_subtract_is_identity(self, a, b):
        assert (a + b) - b == a

    @given(vectors, vectors)
    def test_fits_is_consistent_with_subtraction(self, a, b):
        if a.fits(b):
            remainder = b - a
            assert remainder.cpus >= 0 and remainder.gpus >= 0

    @given(vectors, st.integers(min_value=1, max_value=100))
    def test_dominant_share_bounds(self, usage, scale):
        total = ResourceVector(cpus=10_000 * scale, gpus=10_000 * scale)
        share = usage.dominant_share(total)
        assert 0.0 <= share <= 1.0


class TestBandwidthMonitorProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
        st.floats(min_value=1.0, max_value=200.0, allow_nan=False),
    )
    def test_water_filling_invariants(self, demands, capacity):
        monitor = BandwidthMonitor(capacity)
        for index, demand in enumerate(demands):
            monitor.register(f"j{index}", demand, is_cpu_job=True)
        granted = [monitor.usage_of(f"j{i}").granted for i in range(len(demands))]
        # 1. Conservation: never hand out more than capacity.
        assert sum(granted) <= capacity + 1e-6
        # 2. No job gets more than it asked for.
        for demand, grant in zip(demands, granted):
            assert grant <= demand + 1e-9
        # 3. Work conservation: if anyone is unsatisfied, capacity is used.
        unsatisfied = any(g < d - 1e-6 for d, g in zip(demands, granted))
        if unsatisfied:
            assert sum(granted) >= capacity - 1e-6
        # 4. Max-min fairness: an unsatisfied job's grant is at least as
        # large as every other job's grant.
        for demand, grant in zip(demands, granted):
            if grant < demand - 1e-6:
                assert all(grant >= other - 1e-6 for other in granted)

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
            min_size=2,
            max_size=8,
        )
    )
    def test_smaller_demand_never_gets_less(self, demands):
        monitor = BandwidthMonitor(50.0)
        for index, demand in enumerate(demands):
            monitor.register(f"j{index}", demand, is_cpu_job=True)
        pairs = [
            (demand, monitor.usage_of(f"j{index}").granted)
            for index, demand in enumerate(demands)
        ]
        pairs.sort()
        grants = [grant for _, grant in pairs]
        for earlier, later in zip(grants, grants[1:]):
            assert earlier <= later + 1e-6


class TestEngineProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=0,
            max_size=50,
        )
    )
    def test_events_fire_in_nondecreasing_time_order(self, times):
        engine = Engine()
        fired = []
        for when in times:
            engine.schedule(when, lambda when=when: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
                st.booleans(),
            ),
            min_size=0,
            max_size=40,
        )
    )
    def test_cancelled_events_never_fire(self, entries):
        engine = Engine()
        fired = []
        for index, (when, cancel) in enumerate(entries):
            handle = engine.schedule(when, lambda index=index: fired.append(index))
            if cancel:
                handle.cancel()
        engine.run()
        expected = [i for i, (_, cancel) in enumerate(entries) if not cancel]
        assert sorted(fired) == expected


class TestStatsProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_percentile_within_range(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    def test_percentile_monotone_in_q(self, values):
        results = [percentile(values, q) for q in (0, 25, 50, 75, 100)]
        assert results == sorted(results)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=0,
            max_size=100,
        )
    )
    def test_cdf_is_a_distribution(self, values):
        points = cdf_points(values)
        fractions = [fraction for _, fraction in points]
        assert fractions == sorted(fractions)
        if values:
            assert math.isclose(fractions[-1], 1.0)


class TestTuningProperties:
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=60)
    def test_settles_within_epsilon_of_unimodal_peak(self, optimum, n_start):
        """For any unimodal curve and any start, the settled allocation's
        utilization is within epsilon of the curve's true peak."""

        def curve(cores: int) -> float:
            if cores <= optimum:
                return 0.9 * cores / optimum
            return max(0.0, 0.9 - 0.05 * (cores - optimum))

        session = TuningSession(n_start=n_start, min_cores=1, max_cores=20)
        cores = session.next_cores
        steps = 0
        while cores is not None and steps < 100:
            cores = session.record(cores, curve(cores))
            steps += 1
        assert session.done
        assert curve(session.best_cores) >= 0.9 - session.epsilon - 0.05

    @given(st.integers(min_value=1, max_value=28))
    def test_step_count_is_bounded(self, n_start):
        """On a flat curve the slimming walk visits each lower core count
        once; the step count is bounded by the start plus the two
        direction probes and the session always terminates at the floor."""
        session = TuningSession(n_start=n_start, min_cores=1, max_cores=28)
        cores = session.next_cores
        while cores is not None:
            cores = session.record(cores, 0.5)
        assert session.steps_taken <= n_start + 2
        assert session.best_cores == 1


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=30))
    def test_derive_seed_stable_and_bounded(self, root, name):
        a = derive_seed(root, name)
        assert a == derive_seed(root, name)
        assert 0 <= a < 2**64
