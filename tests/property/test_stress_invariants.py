"""Randomized end-to-end stress: system invariants under any workload.

Hypothesis generates small random workloads; after (and during) the run,
the cluster's bookkeeping must be exactly consistent for every policy —
no overcommitted node, no orphaned GPU, no leaked bandwidth registration,
no negative ledger.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NodeConfig
from repro.core.coda import CodaScheduler
from repro.experiments.runner import SimulationRunner
from repro.perfmodel.catalog import ALL_MODEL_NAMES
from repro.perfmodel.stages import TrainSetup
from repro.schedulers.drf import DrfScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.workload.job import CpuJob, GpuJob

job_specs = st.lists(
    st.tuples(
        st.booleans(),  # is_gpu
        st.floats(min_value=0.0, max_value=1800.0, allow_nan=False),  # submit
        st.integers(min_value=1, max_value=20),  # tenant
        st.sampled_from(sorted(ALL_MODEL_NAMES)),
        st.sampled_from([(1, 1), (1, 2), (1, 4), (2, 2)]),  # (nodes, gpus)
        st.integers(min_value=1, max_value=24),  # cores
        st.integers(min_value=1, max_value=400),  # iterations / duration
        st.booleans(),  # heat
    ),
    min_size=0,
    max_size=25,
)

policies = st.sampled_from(["fifo", "drf", "coda"])

_FACTORIES = {
    "fifo": FifoScheduler,
    "drf": DrfScheduler,
    "coda": CodaScheduler,
}


def _build_jobs(specs):
    jobs = []
    for index, (is_gpu, submit, tenant, model, shape, cores, work, heat) in enumerate(
        specs
    ):
        if is_gpu:
            nodes, gpus = shape
            jobs.append(
                GpuJob(
                    job_id=f"g{index}",
                    tenant_id=tenant,
                    submit_time=submit,
                    model_name=model,
                    setup=TrainSetup(nodes, gpus),
                    requested_cpus=cores,
                    total_iterations=work,
                )
            )
        else:
            jobs.append(
                CpuJob(
                    job_id=f"c{index}",
                    tenant_id=tenant,
                    submit_time=submit,
                    cores=min(cores, 14),
                    duration_s=float(work * 10),
                    bw_demand_gbps=80.0 if heat else 1.0,
                    is_heat=heat,
                )
            )
    return jobs


def _check_cluster_invariants(cluster: Cluster) -> None:
    for node in cluster.nodes:
        assert 0 <= node.used_cpus <= node.total_cpus
        shares_cpus = sum(
            node.share_of(job_id).cpus for job_id in node.jobs_here()
        )
        assert shares_cpus == node.used_cpus
        owners = [gpu.owner for gpu in node.gpus if gpu.owner is not None]
        shares_gpus = sum(
            node.share_of(job_id).gpus for job_id in node.jobs_here()
        )
        assert len(owners) == shares_gpus
        for owner in owners:
            assert node.holds(owner)
        # Bandwidth registrations only for resident jobs.
        for job_id in node.bandwidth._usages:
            assert node.holds(job_id)
        assert node.bandwidth.total_granted <= (
            node.bandwidth.capacity_gbps + 1e-6
        )
        for gpu in node.gpus:
            assert 0.0 <= gpu.utilization <= 1.0


class TestStressInvariants:
    @given(specs=job_specs, policy=policies, horizon=st.integers(600, 7200))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_bookkeeping_is_always_consistent(self, specs, policy, horizon):
        cluster = Cluster(
            ClusterConfig(
                node_groups=((2, NodeConfig(gpus=4)), (1, NodeConfig(gpus=8)))
            )
        )
        runner = SimulationRunner(
            cluster, _FACTORIES[policy](), sample_interval_s=300.0
        )
        for job in _build_jobs(specs):
            runner.submit_at(job.submit_time, job)
        # Check invariants at several points mid-run, then at the end.
        for checkpoint in (horizon / 3, 2 * horizon / 3, horizon):
            runner.engine.run(until=checkpoint)
            _check_cluster_invariants(cluster)
        # Accounting closure: every record is consistent.
        for record in runner.collector.records.values():
            if record.finish_time is not None:
                assert record.first_start is not None
                assert record.finish_time >= record.first_start
            if record.first_start is not None:
                assert record.first_start >= record.submit_time

    @given(specs=job_specs, policy=policies)
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_long_run_drains_completely(self, specs, policy):
        """Given enough time with no further arrivals, everything that can
        run finishes, and the cluster returns (nearly) to empty."""
        cluster = Cluster(
            ClusterConfig(
                node_groups=((2, NodeConfig(gpus=4)), (1, NodeConfig(gpus=8)))
            )
        )
        runner = SimulationRunner(
            cluster, _FACTORIES[policy](), sample_interval_s=3600.0
        )
        jobs = _build_jobs(specs)
        for job in jobs:
            runner.submit_at(job.submit_time, job)
        runner.engine.run(until=40 * 24 * 3600.0)
        # Anything still holding resources must be genuinely unplaceable
        # (e.g., an 8-GPU-per-node job on this cluster) — never a leak.
        for job in jobs:
            record = runner.collector.records[job.job_id]
            if record.finish_time is None and isinstance(job, GpuJob):
                per_node_possible = any(
                    node.total_gpus >= job.setup.gpus_per_node
                    and node.total_cpus >= 1
                    for node in cluster.nodes
                )
                nodes_possible = (
                    sum(
                        1
                        for node in cluster.nodes
                        if node.total_gpus >= job.setup.gpus_per_node
                    )
                    >= job.setup.num_nodes
                )
                assert not (per_node_possible and nodes_possible), job.job_id
        _check_cluster_invariants(cluster)