"""Iteration-time composition mechanics."""

import pytest

from repro.cluster.interconnect import Interconnect
from repro.perfmodel.catalog import get_model
from repro.perfmodel.contention import ContentionState
from repro.perfmodel.speed import iteration_time, training_speed
from repro.perfmodel.stages import IterationBreakdown, TrainSetup


class TestBasics:
    def test_speed_is_reciprocal_of_total(self):
        profile = get_model("resnet50")
        setup = TrainSetup(1, 1)
        breakdown = iteration_time(profile, setup, 3)
        assert training_speed(profile, setup, 3) == pytest.approx(
            1.0 / breakdown.total_s
        )

    def test_zero_cores_raises(self):
        with pytest.raises(ValueError):
            iteration_time(get_model("resnet50"), TrainSetup(1, 1), 0)

    def test_more_cores_shrink_prep(self):
        profile = get_model("alexnet")
        setup = TrainSetup(1, 1)
        assert (
            iteration_time(profile, setup, 4).prep_s
            > iteration_time(profile, setup, 8).prep_s
        )

    def test_single_node_has_no_sync(self):
        breakdown = iteration_time(get_model("vgg16"), TrainSetup(1, 2), 4)
        assert breakdown.sync_s == 0.0

    def test_multi_node_has_sync(self):
        breakdown = iteration_time(get_model("vgg16"), TrainSetup(2, 2), 2)
        assert breakdown.sync_s > 0.0

    def test_quiet_node_has_no_pcie_penalty(self):
        breakdown = iteration_time(get_model("alexnet"), TrainSetup(1, 1), 8)
        assert breakdown.pcie_penalty_s == 0.0

    def test_overhead_scales_with_cores(self):
        profile = get_model("resnet50")
        setup = TrainSetup(1, 1)
        a = iteration_time(profile, setup, 4).overhead_s
        b = iteration_time(profile, setup, 8).overhead_s
        assert b == pytest.approx(2 * a)


class TestPipelineComposition:
    def test_pipelined_total_is_max_of_paths(self):
        breakdown = IterationBreakdown(
            prep_s=2.0,
            gpu_s=3.0,
            sync_s=0.5,
            pcie_penalty_s=0.0,
            overhead_s=0.1,
            pipelined=True,
        )
        assert breakdown.total_s == pytest.approx(3.6)
        assert not breakdown.prep_bound

    def test_pipelined_prep_bound(self):
        breakdown = IterationBreakdown(
            prep_s=5.0,
            gpu_s=3.0,
            sync_s=0.0,
            pcie_penalty_s=0.0,
            overhead_s=0.0,
            pipelined=True,
        )
        assert breakdown.total_s == pytest.approx(5.0)
        assert breakdown.prep_bound
        assert breakdown.utilization == pytest.approx(0.6)

    def test_serial_total_is_sum_of_paths(self):
        breakdown = IterationBreakdown(
            prep_s=2.0,
            gpu_s=3.0,
            sync_s=0.5,
            pcie_penalty_s=0.1,
            overhead_s=0.1,
            pipelined=False,
        )
        assert breakdown.total_s == pytest.approx(5.7)


class TestContentionEffects:
    def test_bandwidth_starvation_stretches_prep(self):
        profile = get_model("alexnet")
        setup = TrainSetup(1, 1)
        starved = ContentionState(bw_grant_ratio=0.5)
        assert (
            iteration_time(profile, setup, 8, starved).prep_s
            > iteration_time(profile, setup, 8).prep_s
        )

    def test_pcie_contention_adds_penalty(self):
        profile = get_model("alexnet")
        setup = TrainSetup(1, 2)
        contended = ContentionState(pcie_grant_ratio=2.0 / 3.0)
        breakdown = iteration_time(profile, setup, 16, contended)
        assert breakdown.pcie_penalty_s > 0.0

    def test_pcie_penalty_within_paper_range(self):
        """Sec. IV-C3: heavy CV co-location costs 5-10 %."""
        profile = get_model("alexnet")
        setup = TrainSetup(1, 2)
        quiet = training_speed(profile, setup, 16)
        loud = training_speed(
            profile, setup, 16, ContentionState(pcie_grant_ratio=2.0 / 3.0)
        )
        drop = 1.0 - loud / quiet
        assert 0.03 <= drop <= 0.12

    def test_light_models_unaffected_by_pcie(self):
        """Sec. IV-C3: NLP/speech consume <1 GB/s and barely notice."""
        profile = get_model("transformer")
        setup = TrainSetup(1, 1)
        quiet = training_speed(profile, setup, 2)
        loud = training_speed(
            profile, setup, 2, ContentionState(pcie_grant_ratio=0.8)
        )
        assert 1.0 - loud / quiet < 0.01


class TestMultiNode:
    def test_physical_sync_floor_for_heavy_models(self):
        """A slow fabric makes the physical push/pull dominate the
        calibrated overhead."""
        profile = get_model("vgg16")  # 528 MB of weights
        slow = Interconnect(link_gbps=0.125)  # 1 Gb/s
        fast = Interconnect(link_gbps=12.5)  # 100 Gb/s
        setup = TrainSetup(2, 2)
        slow_sync = iteration_time(profile, setup, 2, interconnect=slow).sync_s
        fast_sync = iteration_time(profile, setup, 2, interconnect=fast).sync_s
        assert slow_sync > fast_sync
        assert slow_sync >= 2 * 0.528 / 0.125 * 0.99

    def test_multinode_prep_is_window_limited(self):
        """Sec. IV-B2: the network-paced pipeline bounds per-node prep."""
        profile = get_model("alexnet")
        single = iteration_time(profile, TrainSetup(1, 2), 2).prep_s
        multi = iteration_time(profile, TrainSetup(2, 2), 2).prep_s
        assert multi < single


class TestTrainSetup:
    def test_label(self):
        assert TrainSetup(2, 2).label == "2N4G"
        assert TrainSetup(1, 4).label == "1N4G"

    def test_parse_round_trip(self):
        setup = TrainSetup.parse("2N4G")
        assert setup.num_nodes == 2
        assert setup.gpus_per_node == 2
        assert setup.total_gpus == 4

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            TrainSetup.parse("4G2N")

    def test_parse_rejects_indivisible(self):
        with pytest.raises(ValueError):
            TrainSetup.parse("2N3G")

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainSetup(0, 1)
        with pytest.raises(ValueError):
            TrainSetup(1, 0)
        with pytest.raises(ValueError):
            TrainSetup(1, 1, batch=0)
