"""Model catalog integrity."""

import pytest

from repro.perfmodel.catalog import (
    ALL_MODEL_NAMES,
    Domain,
    get_model,
    models_in_domain,
)


class TestCatalog:
    def test_has_the_eight_table1_models(self):
        assert set(ALL_MODEL_NAMES) == {
            "alexnet",
            "vgg16",
            "inception3",
            "resnet50",
            "bat",
            "transformer",
            "wavenet",
            "deepspeech",
        }

    def test_domains_match_table1(self):
        assert get_model("alexnet").domain is Domain.CV
        assert get_model("vgg16").domain is Domain.CV
        assert get_model("inception3").domain is Domain.CV
        assert get_model("resnet50").domain is Domain.CV
        assert get_model("bat").domain is Domain.NLP
        assert get_model("transformer").domain is Domain.NLP
        assert get_model("wavenet").domain is Domain.SPEECH
        assert get_model("deepspeech").domain is Domain.SPEECH

    def test_lookup_is_case_insensitive(self):
        assert get_model("AlexNet").name == "alexnet"

    def test_paper_aliases_resolve(self):
        assert get_model("Bi-Att-Flow").name == "bat"
        assert get_model("InceptionV3").name == "inception3"
        assert get_model("ResNet-50").name == "resnet50"

    def test_unknown_model_raises_with_known_names(self):
        with pytest.raises(KeyError) as err:
            get_model("bert")
        assert "alexnet" in str(err.value)

    def test_models_in_domain(self):
        cv = [profile.name for profile in models_in_domain(Domain.CV)]
        assert cv == ["alexnet", "vgg16", "inception3", "resnet50"]
        assert len(models_in_domain(Domain.NLP)) == 2
        assert len(models_in_domain(Domain.SPEECH)) == 2


class TestDerivedQuantities:
    def test_gpu_time_is_below_iteration_time(self):
        for name in ALL_MODEL_NAMES:
            profile = get_model(name)
            assert 0 < profile.gpu_time_s < profile.iter_time_s

    def test_gpu_time_scales_linearly_with_batch(self):
        profile = get_model("resnet50")
        doubled = profile.gpu_time_at(profile.default_batch * 2)
        assert doubled == pytest.approx(2 * profile.gpu_time_s)

    def test_prep_work_is_positive(self):
        for name in ALL_MODEL_NAMES:
            profile = get_model(name)
            assert profile.prep_cpu_seconds(profile.default_batch) > 0

    def test_alexnet_prep_grows_superlinearly_with_batch(self):
        profile = get_model("alexnet")
        base = profile.prep_cpu_seconds(profile.default_batch)
        double = profile.prep_cpu_seconds(profile.default_batch * 2)
        assert double > 2 * base

    def test_other_models_prep_grows_linearly(self):
        profile = get_model("vgg16")
        base = profile.prep_cpu_seconds(profile.default_batch)
        double = profile.prep_cpu_seconds(profile.default_batch * 2)
        assert double == pytest.approx(2 * base)

    def test_nlp_models_are_serial_and_in_memory(self):
        for name in ("bat", "transformer"):
            profile = get_model(name)
            assert not profile.pipelined
            assert profile.in_memory_dataset
            assert profile.prep_parallelism_cap is not None

    def test_invalid_batch_raises(self):
        with pytest.raises(ValueError):
            get_model("vgg16").prep_cpu_seconds(0)

    def test_weight_bytes(self):
        assert get_model("vgg16").weight_bytes == pytest.approx(528e6)
