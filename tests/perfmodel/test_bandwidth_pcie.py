"""Bandwidth-demand (Fig. 6) and PCIe (Sec. IV-C3) models."""

import pytest

from repro.perfmodel.bandwidth import memory_bandwidth_demand
from repro.perfmodel.catalog import ALL_MODEL_NAMES, get_model
from repro.perfmodel.pcie import pcie_demand, pcie_grant_ratio, pcie_peak_demand
from repro.perfmodel.stages import TrainSetup
from repro.perfmodel.utilization import optimal_cores


def _demand(name, setup=None, cores=None, batch=None):
    profile = get_model(name)
    setup = setup or TrainSetup(1, 1, batch=batch)
    cores = cores if cores is not None else optimal_cores(profile, setup)
    return memory_bandwidth_demand(profile, setup, cores)


class TestFig6Bandwidth:
    def test_cv_demand_anticorrelates_with_complexity(self):
        """Sec. IV-C1: lower complexity -> more bandwidth."""
        order = ["alexnet", "vgg16", "inception3", "resnet50"]
        demands = [_demand(name) for name in order]
        assert demands == sorted(demands, reverse=True)

    def test_nlp_demand_is_tiny(self):
        assert _demand("bat") < 1.0
        assert _demand("transformer") < 1.0

    def test_wavenet_demand_grows_with_batch(self):
        profile = get_model("wavenet")
        base = _demand("wavenet", batch=profile.default_batch)
        bigger = _demand("wavenet", batch=profile.max_batch)
        assert bigger > base

    def test_deepspeech_demand_flat_in_batch(self):
        profile = get_model("deepspeech")
        base = _demand("deepspeech", batch=profile.default_batch)
        bigger = _demand("deepspeech", batch=profile.max_batch)
        assert bigger == pytest.approx(base)

    def test_demand_linear_in_local_gpus(self):
        """Sec. IV-C1: multi-GPU demand increases linearly."""
        profile = get_model("resnet50")
        one = memory_bandwidth_demand(profile, TrainSetup(1, 1), 3)
        four = memory_bandwidth_demand(profile, TrainSetup(1, 4), 12)
        assert four == pytest.approx(4 * one)

    def test_fewer_cores_dilute_demand(self):
        profile = get_model("alexnet")
        setup = TrainSetup(1, 1)
        assert memory_bandwidth_demand(
            profile, setup, 2
        ) < memory_bandwidth_demand(profile, setup, 8)

    def test_zero_cores_raises(self):
        with pytest.raises(ValueError):
            memory_bandwidth_demand(get_model("alexnet"), TrainSetup(1, 1), 0)

    def test_anchor_value_at_calibration_point(self):
        profile = get_model("alexnet")
        setup = TrainSetup(1, 1)
        anchored = memory_bandwidth_demand(
            profile, setup, profile.optimal_cores_1g
        )
        assert anchored == pytest.approx(profile.bw_demand_gbps)


class TestPcie:
    @pytest.mark.parametrize("name", sorted(ALL_MODEL_NAMES))
    def test_no_model_exceeds_half_a_slot(self, name):
        """Sec. IV-C3: nobody uses more than half of 16 GB/s on average."""
        assert pcie_demand(get_model(name), TrainSetup(1, 1)) <= 8.0 + 1e-9

    def test_heavy_hitters_peak_at_12(self):
        assert pcie_peak_demand(get_model("alexnet"), TrainSetup(1, 1)) == 12.0
        assert pcie_peak_demand(get_model("resnet50"), TrainSetup(1, 1)) == 12.0

    def test_nlp_and_speech_below_1(self):
        for name in ("bat", "transformer", "wavenet", "deepspeech"):
            assert pcie_demand(get_model(name), TrainSetup(1, 1)) <= 1.0

    def test_two_1n1g_jobs_never_contend(self):
        """Sec. IV-C3: co-locating two 1N1G jobs is always safe."""
        for left in ALL_MODEL_NAMES:
            for right in ALL_MODEL_NAMES:
                peaks = [
                    pcie_peak_demand(get_model(left), TrainSetup(1, 1)),
                    pcie_peak_demand(get_model(right), TrainSetup(1, 1)),
                ]
                assert pcie_grant_ratio(peaks, 32.0) == 1.0

    def test_heavy_1n2g_pair_contends(self):
        peaks = [
            pcie_peak_demand(get_model("alexnet"), TrainSetup(1, 2)),
            pcie_peak_demand(get_model("resnet50"), TrainSetup(1, 2)),
        ]
        assert pcie_grant_ratio(peaks, 32.0) < 1.0

    def test_grant_ratio_validation(self):
        with pytest.raises(ValueError):
            pcie_grant_ratio([1.0], 0.0)
