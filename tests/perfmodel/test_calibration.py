"""Calibration against the paper's published measurements.

These are the reproduction's anchor tests: every fact asserted here is a
sentence, figure, or table entry from the paper.
"""

import pytest

from repro.perfmodel.catalog import ALL_MODEL_NAMES, get_model
from repro.perfmodel.contention import ContentionState
from repro.perfmodel.speed import iteration_time, training_speed
from repro.perfmodel.stages import TrainSetup
from repro.perfmodel.utilization import gpu_utilization, optimal_cores

#: Fig. 5 anchors (1N1G, default batch).
OPTIMAL_1N1G = {
    "alexnet": 8,
    "vgg16": 5,
    "inception3": 4,
    "resnet50": 3,
    "bat": 5,
    "transformer": 2,
    "wavenet": 6,
    "deepspeech": 4,
}

#: Table II anchors: iteration time = steps x 90 s / reported iterations.
ITER_TIME = {
    "alexnet": 360 / 260,
    "vgg16": 360 / 70,
    "inception3": 270 / 180,
    "resnet50": 270 / 150,
    "bat": 360 / 35,
    "transformer": 270 / 260,
    "wavenet": 270 / 28,
    "deepspeech": 270 / 45,
}


class TestFig5OptimalCores:
    @pytest.mark.parametrize("name,expected", sorted(OPTIMAL_1N1G.items()))
    def test_1n1g_optimum(self, name, expected):
        assert optimal_cores(get_model(name), TrainSetup(1, 1)) == expected

    def test_cv_simpler_means_more_cores(self):
        """Sec. IV-B1: 'the simpler the network, the more CPUs required'."""
        order = ["alexnet", "vgg16", "inception3", "resnet50"]
        optima = [optimal_cores(get_model(n), TrainSetup(1, 1)) for n in order]
        assert optima == sorted(optima, reverse=True)

    def test_transformer_is_the_only_model_optimal_at_two(self):
        """Fig. 3: 'most models do not gain the best performance with
        2-CPU configuration except Transformer with 1N1G'."""
        at_two = [
            name
            for name in ALL_MODEL_NAMES
            if optimal_cores(get_model(name), TrainSetup(1, 1)) <= 2
        ]
        assert at_two == ["transformer"]

    def test_wavenet_needs_more_than_deepspeech(self):
        """Sec. IV-B1: audio re-cut makes Wavenet hungrier."""
        wavenet = optimal_cores(get_model("wavenet"), TrainSetup(1, 1))
        deepspeech = optimal_cores(get_model("deepspeech"), TrainSetup(1, 1))
        assert wavenet > deepspeech

    @pytest.mark.parametrize(
        "name", [n for n in ALL_MODEL_NAMES if n != "alexnet"]
    )
    def test_batch_independence(self, name):
        """Sec. IV-B1: 'CPU demands of most models are independent of BS'."""
        profile = get_model(name)
        default = optimal_cores(
            profile, TrainSetup(1, 1, profile.default_batch)
        )
        maximum = optimal_cores(profile, TrainSetup(1, 1, profile.max_batch))
        assert default == maximum

    def test_alexnet_optimum_shifts_with_batch(self):
        """Fig. 5: AlexNet is the exception."""
        profile = get_model("alexnet")
        default = optimal_cores(
            profile, TrainSetup(1, 1, profile.default_batch)
        )
        maximum = optimal_cores(profile, TrainSetup(1, 1, profile.max_batch))
        assert maximum > default

    @pytest.mark.parametrize("name", sorted(ALL_MODEL_NAMES))
    def test_single_node_multi_gpu_scales_roughly_linearly(self, name):
        """Sec. IV-B2: demand 'has a linear relationship with the number
        of GPUs' on one node (saturating at the node's core count)."""
        profile = get_model(name)
        one = optimal_cores(profile, TrainSetup(1, 1))
        two = optimal_cores(profile, TrainSetup(1, 2))
        assert two == pytest.approx(2 * one, abs=1) or two == 28

    @pytest.mark.parametrize("name", sorted(ALL_MODEL_NAMES))
    def test_multi_node_needs_at_most_two_cores(self, name):
        """Sec. IV-B2: 'the CPU requirements of all models are no more
        than two cores' in multi-node configurations."""
        assert optimal_cores(get_model(name), TrainSetup(2, 2)) <= 2

    @pytest.mark.parametrize("name", sorted(ALL_MODEL_NAMES))
    def test_multi_node_degradation_25_to_30_percent(self, name):
        """Sec. IV-B2: 25-30 % slower than 1N4G (AlexNet's 1N4G optimum is
        itself core-capped by the 28-core node, relaxing its ratio)."""
        profile = get_model(name)
        multi = TrainSetup(2, 2)
        single = TrainSetup(1, 4)
        speed_multi = training_speed(
            profile, multi, optimal_cores(profile, multi)
        )
        speed_single = training_speed(
            profile, single, optimal_cores(profile, single)
        )
        ratio = speed_multi / speed_single
        assert 0.68 <= ratio <= 0.86


class TestTable2IterationTimes:
    @pytest.mark.parametrize("name,expected", sorted(ITER_TIME.items()))
    def test_iteration_time_at_optimum(self, name, expected):
        profile = get_model(name)
        setup = TrainSetup(1, 1)
        best = optimal_cores(profile, setup)
        total = iteration_time(profile, setup, best).total_s
        assert total == pytest.approx(expected, rel=0.02)


class TestFig3Shape:
    @pytest.mark.parametrize("name", sorted(ALL_MODEL_NAMES))
    def test_utilization_peaks_at_optimum(self, name):
        profile = get_model(name)
        setup = TrainSetup(1, 1)
        best = optimal_cores(profile, setup)
        peak = gpu_utilization(profile, setup, best)
        for cores in range(1, 17):
            assert gpu_utilization(profile, setup, cores) <= peak + 1e-9

    @pytest.mark.parametrize("name", sorted(ALL_MODEL_NAMES))
    def test_utilization_declines_gently_past_optimum(self, name):
        """Sec. V-B: 'the corresponding GPU utilization drops slightly'."""
        profile = get_model(name)
        setup = TrainSetup(1, 1)
        best = optimal_cores(profile, setup)
        peak = gpu_utilization(profile, setup, best)
        past = gpu_utilization(profile, setup, best + 4)
        assert past < peak
        assert past > peak * 0.9

    def test_performance_gap_spans_10_percent_to_over_5x(self):
        """Fig. 3: 'the performance gap is in the range of 10 % to over
        5X' between 2 cores and the optimum."""
        gaps = []
        for name in ALL_MODEL_NAMES:
            profile = get_model(name)
            setup = TrainSetup(1, 1)
            best = optimal_cores(profile, setup)
            gaps.append(
                training_speed(profile, setup, best)
                / training_speed(profile, setup, min(2, best))
            )
        assert min(gaps) >= 1.0
        assert max(gaps) > 3.0

    def test_speed_and_utilization_peak_together(self):
        """Sec. V-B finding 1: both signals peak at the same core count."""
        for name in ALL_MODEL_NAMES:
            profile = get_model(name)
            setup = TrainSetup(1, 1)
            speeds = {
                c: training_speed(profile, setup, c) for c in range(1, 17)
            }
            utils = {
                c: gpu_utilization(profile, setup, c) for c in range(1, 17)
            }
            assert max(speeds, key=speeds.get) == max(utils, key=utils.get)


class TestFig7Contention:
    HIGH_PRESSURE = ContentionState(node_bw_pressure=0.97)

    def _drop(self, name: str) -> float:
        profile = get_model(name)
        setup = TrainSetup(1, 1)
        best = optimal_cores(profile, setup)
        quiet = training_speed(profile, setup, best)
        loud = training_speed(profile, setup, best, self.HIGH_PRESSURE)
        return 1.0 - loud / quiet

    def test_nlp_models_drop_at_least_50_percent(self):
        assert self._drop("bat") >= 0.50
        assert self._drop("transformer") >= 0.50

    def test_alexnet_is_the_only_sensitive_cv_model(self):
        assert self._drop("alexnet") > 0.15
        for name in ("vgg16", "inception3", "resnet50"):
            assert self._drop(name) < 0.10

    def test_deepspeech_more_sensitive_than_wavenet(self):
        assert self._drop("deepspeech") > self._drop("wavenet")

    @pytest.mark.parametrize("name", sorted(ALL_MODEL_NAMES))
    def test_no_model_is_llc_sensitive(self, name):
        """Fig. 7: 'all the models are not sensitive to LLC contention'."""
        profile = get_model(name)
        setup = TrainSetup(1, 1)
        best = optimal_cores(profile, setup)
        quiet = training_speed(profile, setup, best)
        llc = training_speed(
            profile, setup, best, ContentionState(llc_pressure=2.0)
        )
        assert llc == pytest.approx(quiet)
