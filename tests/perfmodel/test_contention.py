"""Contention-state math."""

import pytest

from repro.perfmodel.contention import (
    BANDWIDTH_PRESSURE_THRESHOLD,
    UNCONTENDED,
    ContentionState,
    bandwidth_excess,
    cpu_work_slowdown,
)


class TestContentionState:
    def test_uncontended_defaults(self):
        assert UNCONTENDED.bw_grant_ratio == 1.0
        assert UNCONTENDED.node_bw_pressure == 0.0

    def test_rejects_zero_grant_ratio(self):
        with pytest.raises(ValueError):
            ContentionState(bw_grant_ratio=0.0)

    def test_rejects_grant_ratio_above_one(self):
        with pytest.raises(ValueError):
            ContentionState(bw_grant_ratio=1.5)

    def test_rejects_negative_pressure(self):
        with pytest.raises(ValueError):
            ContentionState(node_bw_pressure=-0.1)

    def test_rejects_bad_pcie_ratio(self):
        with pytest.raises(ValueError):
            ContentionState(pcie_grant_ratio=0.0)


class TestBandwidthExcess:
    def test_zero_below_threshold(self):
        state = ContentionState(
            node_bw_pressure=BANDWIDTH_PRESSURE_THRESHOLD - 0.01
        )
        assert bandwidth_excess(state) == 0.0

    def test_zero_at_threshold(self):
        state = ContentionState(node_bw_pressure=BANDWIDTH_PRESSURE_THRESHOLD)
        assert bandwidth_excess(state) == 0.0

    def test_one_at_full_capacity(self):
        state = ContentionState(node_bw_pressure=1.0)
        assert bandwidth_excess(state) == pytest.approx(1.0)

    def test_linear_in_between(self):
        mid = (BANDWIDTH_PRESSURE_THRESHOLD + 1.0) / 2.0
        state = ContentionState(node_bw_pressure=mid)
        assert bandwidth_excess(state) == pytest.approx(0.5)


class TestCpuWorkSlowdown:
    def test_uncontended_is_identity(self):
        assert cpu_work_slowdown(
            UNCONTENDED, bw_bound_fraction=0.5, contention_sensitivity=2.0
        ) == pytest.approx(1.0)

    def test_starvation_affects_only_bw_bound_fraction(self):
        state = ContentionState(bw_grant_ratio=0.5)
        slow = cpu_work_slowdown(
            state, bw_bound_fraction=0.5, contention_sensitivity=0.0
        )
        assert slow == pytest.approx(0.5 + 0.5 / 0.5)

    def test_latency_term_scales_with_sensitivity(self):
        state = ContentionState(node_bw_pressure=1.0)
        gentle = cpu_work_slowdown(
            state, bw_bound_fraction=0.0, contention_sensitivity=0.1
        )
        harsh = cpu_work_slowdown(
            state, bw_bound_fraction=0.0, contention_sensitivity=4.0
        )
        assert gentle == pytest.approx(1.1)
        assert harsh == pytest.approx(5.0)

    def test_llc_term_needs_overflow(self):
        under = ContentionState(llc_pressure=0.9)
        over = ContentionState(llc_pressure=1.5)
        assert cpu_work_slowdown(
            under, bw_bound_fraction=0.0, contention_sensitivity=0.0,
            llc_sensitivity=1.0,
        ) == pytest.approx(1.0)
        assert cpu_work_slowdown(
            over, bw_bound_fraction=0.0, contention_sensitivity=0.0,
            llc_sensitivity=1.0,
        ) == pytest.approx(1.5)

    def test_slowdown_never_below_one(self):
        state = ContentionState(
            bw_grant_ratio=0.9, node_bw_pressure=0.8, llc_pressure=1.2
        )
        assert (
            cpu_work_slowdown(
                state, bw_bound_fraction=0.3, contention_sensitivity=1.0
            )
            >= 1.0
        )

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            cpu_work_slowdown(
                UNCONTENDED, bw_bound_fraction=1.5, contention_sensitivity=0.0
            )

    def test_negative_sensitivity_raises(self):
        with pytest.raises(ValueError):
            cpu_work_slowdown(
                UNCONTENDED, bw_bound_fraction=0.5, contention_sensitivity=-1.0
            )
