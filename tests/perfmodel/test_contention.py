"""Contention-state math."""

import pytest

from repro.perfmodel.contention import (
    BANDWIDTH_PRESSURE_THRESHOLD,
    UNCONTENDED,
    ContentionState,
    bandwidth_excess,
    cpu_work_slowdown,
)


class TestContentionState:
    def test_uncontended_defaults(self):
        assert UNCONTENDED.bw_grant_ratio == 1.0
        assert UNCONTENDED.node_bw_pressure == 0.0

    def test_rejects_zero_grant_ratio(self):
        with pytest.raises(ValueError):
            ContentionState(bw_grant_ratio=0.0)

    def test_rejects_grant_ratio_above_one(self):
        with pytest.raises(ValueError):
            ContentionState(bw_grant_ratio=1.5)

    def test_rejects_negative_pressure(self):
        with pytest.raises(ValueError):
            ContentionState(node_bw_pressure=-0.1)

    def test_rejects_bad_pcie_ratio(self):
        with pytest.raises(ValueError):
            ContentionState(pcie_grant_ratio=0.0)


class TestBandwidthExcess:
    def test_zero_below_threshold(self):
        state = ContentionState(
            node_bw_pressure=BANDWIDTH_PRESSURE_THRESHOLD - 0.01
        )
        assert bandwidth_excess(state) == 0.0

    def test_zero_at_threshold(self):
        state = ContentionState(node_bw_pressure=BANDWIDTH_PRESSURE_THRESHOLD)
        assert bandwidth_excess(state) == 0.0

    def test_one_at_full_capacity(self):
        state = ContentionState(node_bw_pressure=1.0)
        assert bandwidth_excess(state) == pytest.approx(1.0)

    def test_linear_in_between(self):
        mid = (BANDWIDTH_PRESSURE_THRESHOLD + 1.0) / 2.0
        state = ContentionState(node_bw_pressure=mid)
        assert bandwidth_excess(state) == pytest.approx(0.5)


class TestCpuWorkSlowdown:
    def test_uncontended_is_identity(self):
        assert cpu_work_slowdown(
            UNCONTENDED, bw_bound_fraction=0.5, contention_sensitivity=2.0
        ) == pytest.approx(1.0)

    def test_starvation_affects_only_bw_bound_fraction(self):
        state = ContentionState(bw_grant_ratio=0.5)
        slow = cpu_work_slowdown(
            state, bw_bound_fraction=0.5, contention_sensitivity=0.0
        )
        assert slow == pytest.approx(0.5 + 0.5 / 0.5)

    def test_latency_term_scales_with_sensitivity(self):
        state = ContentionState(node_bw_pressure=1.0)
        gentle = cpu_work_slowdown(
            state, bw_bound_fraction=0.0, contention_sensitivity=0.1
        )
        harsh = cpu_work_slowdown(
            state, bw_bound_fraction=0.0, contention_sensitivity=4.0
        )
        assert gentle == pytest.approx(1.1)
        assert harsh == pytest.approx(5.0)

    def test_llc_term_needs_overflow(self):
        under = ContentionState(llc_pressure=0.9)
        over = ContentionState(llc_pressure=1.5)
        assert cpu_work_slowdown(
            under, bw_bound_fraction=0.0, contention_sensitivity=0.0,
            llc_sensitivity=1.0,
        ) == pytest.approx(1.0)
        assert cpu_work_slowdown(
            over, bw_bound_fraction=0.0, contention_sensitivity=0.0,
            llc_sensitivity=1.0,
        ) == pytest.approx(1.5)

    def test_slowdown_never_below_one(self):
        state = ContentionState(
            bw_grant_ratio=0.9, node_bw_pressure=0.8, llc_pressure=1.2
        )
        assert (
            cpu_work_slowdown(
                state, bw_bound_fraction=0.3, contention_sensitivity=1.0
            )
            >= 1.0
        )

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            cpu_work_slowdown(
                UNCONTENDED, bw_bound_fraction=1.5, contention_sensitivity=0.0
            )

    def test_negative_sensitivity_raises(self):
        with pytest.raises(ValueError):
            cpu_work_slowdown(
                UNCONTENDED, bw_bound_fraction=0.5, contention_sensitivity=-1.0
            )


class TestEffectKey:
    """effect_key collapses snapshots to what the speed model reads."""

    def test_subthreshold_pressure_wobble_is_invisible(self):
        from repro.perfmodel.contention import effect_key

        quiet = ContentionState(node_bw_pressure=0.10)
        busier = ContentionState(node_bw_pressure=0.74)
        assert effect_key(quiet) == effect_key(busier)

    def test_past_threshold_pressure_moves_the_key(self):
        from repro.perfmodel.contention import effect_key

        below = ContentionState(node_bw_pressure=BANDWIDTH_PRESSURE_THRESHOLD)
        above = ContentionState(node_bw_pressure=0.9)
        assert effect_key(below) != effect_key(above)

    def test_subcapacity_llc_is_invisible(self):
        from repro.perfmodel.contention import effect_key

        assert effect_key(ContentionState(llc_pressure=0.2)) == effect_key(
            ContentionState(llc_pressure=0.99)
        )
        assert effect_key(ContentionState(llc_pressure=1.5)) != effect_key(
            ContentionState(llc_pressure=0.99)
        )

    def test_equal_keys_price_bit_identically(self):
        """The soundness claim behind the reprice state memo: any two
        snapshots with equal effect keys produce byte-identical
        iteration breakdowns."""
        from repro.perfmodel.catalog import get_model
        from repro.perfmodel.contention import effect_key
        from repro.perfmodel.speed import iteration_time
        from repro.perfmodel.stages import TrainSetup

        profile = get_model("ResNet50")
        setup = TrainSetup(num_nodes=1, gpus_per_node=2)
        pairs = [
            (
                ContentionState(bw_grant_ratio=0.8, node_bw_pressure=0.2),
                ContentionState(bw_grant_ratio=0.8, node_bw_pressure=0.7),
            ),
            (
                ContentionState(llc_pressure=0.1, pcie_grant_ratio=0.5),
                ContentionState(llc_pressure=0.9, pcie_grant_ratio=0.5),
            ),
        ]
        for first, second in pairs:
            assert effect_key(first) == effect_key(second)
            a = iteration_time(profile, setup, 4, first)
            b = iteration_time(profile, setup, 4, second)
            assert a.total_s == b.total_s
            assert a.utilization == b.utilization

    def test_grant_and_pcie_always_move_the_key(self):
        from repro.perfmodel.contention import effect_key

        base = ContentionState()
        assert effect_key(base) != effect_key(
            ContentionState(bw_grant_ratio=0.9)
        )
        assert effect_key(base) != effect_key(
            ContentionState(pcie_grant_ratio=0.9)
        )
