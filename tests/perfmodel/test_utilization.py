"""Utilization curves and the optimum search."""

import pytest

from repro.perfmodel.catalog import get_model
from repro.perfmodel.stages import TrainSetup
from repro.perfmodel.utilization import (
    gpu_utilization,
    optimal_cores,
    utilization_curve,
)


class TestUtilizationCurve:
    def test_covers_requested_range(self):
        curve = utilization_curve(get_model("resnet50"), TrainSetup(1, 1), 10)
        assert [cores for cores, _ in curve] == list(range(1, 11))

    def test_values_in_unit_interval(self):
        for _, util in utilization_curve(get_model("bat"), TrainSetup(1, 1), 16):
            assert 0.0 < util <= 1.0

    def test_monotone_up_to_optimum(self):
        profile = get_model("vgg16")
        setup = TrainSetup(1, 1)
        best = optimal_cores(profile, setup)
        curve = dict(utilization_curve(profile, setup, best))
        values = [curve[c] for c in range(1, best + 1)]
        assert values == sorted(values)


class TestOptimalCores:
    def test_respects_max_cores(self):
        profile = get_model("alexnet")
        assert optimal_cores(profile, TrainSetup(1, 1), max_cores=4) == 4

    def test_invalid_max_cores_raises(self):
        with pytest.raises(ValueError):
            optimal_cores(get_model("alexnet"), TrainSetup(1, 1), max_cores=0)

    def test_ties_prefer_fewer_cores(self):
        """Past the NLP parallelism cap speed only degrades, so the search
        must not wander right."""
        profile = get_model("transformer")
        assert optimal_cores(profile, TrainSetup(1, 1), max_cores=28) == 2

    def test_gpu_utilization_matches_curve(self):
        profile = get_model("wavenet")
        setup = TrainSetup(1, 1)
        curve = dict(utilization_curve(profile, setup, 8))
        assert gpu_utilization(profile, setup, 5) == pytest.approx(curve[5])
