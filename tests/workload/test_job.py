"""Job record validation."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.perfmodel.stages import TrainSetup
from repro.workload.job import CpuJob, GpuJob, JobHints, JobKind


class TestCpuJob:
    def test_defaults(self):
        job = CpuJob(job_id="c1", tenant_id=1, submit_time=0.0)
        assert job.kind is JobKind.CPU
        assert job.requested == ResourceVector(cpus=1, gpus=0)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            CpuJob(job_id="c1", tenant_id=1, submit_time=0.0, cores=0)

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            CpuJob(job_id="c1", tenant_id=1, submit_time=0.0, duration_s=0.0)

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(ValueError):
            CpuJob(
                job_id="c1", tenant_id=1, submit_time=0.0, bw_demand_gbps=-1.0
            )

    def test_rejects_negative_submit_time(self):
        with pytest.raises(ValueError):
            CpuJob(job_id="c1", tenant_id=1, submit_time=-1.0)


class TestGpuJob:
    def _job(self, **kwargs):
        defaults = dict(
            job_id="g1",
            tenant_id=2,
            submit_time=10.0,
            model_name="resnet50",
            setup=TrainSetup(2, 2),
            requested_cpus=3,
            total_iterations=100,
        )
        defaults.update(kwargs)
        return GpuJob(**defaults)

    def test_requested_totals_across_nodes(self):
        job = self._job()
        assert job.requested == ResourceVector(cpus=6, gpus=4)

    def test_kind(self):
        assert self._job().kind is JobKind.GPU

    def test_category_comes_from_catalog(self):
        assert self._job().category == "CV"
        assert self._job(model_name="bat").category == "NLP"
        assert self._job(model_name="wavenet").category == "SPEECH"

    def test_unknown_model_rejected_at_construction(self):
        with pytest.raises(KeyError):
            self._job(model_name="gpt5")

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            self._job(requested_cpus=0)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            self._job(total_iterations=0)

    def test_hints_default_to_category_only(self):
        hints = self._job().hints
        assert hints.category_provided
        assert hints.uses_pipeline is None
        assert hints.many_weights is None
        assert hints.complex_inter_iteration is None

    def test_jobs_are_immutable(self):
        job = self._job()
        with pytest.raises(AttributeError):
            job.requested_cpus = 5

    def test_hints_record(self):
        hints = JobHints(uses_pipeline=True, many_weights=False)
        job = self._job(hints=hints)
        assert job.hints.uses_pipeline is True
