"""Trace persistence round trips."""

import json

import pytest

from repro.workload.tracegen import TraceConfig, generate_trace
from repro.workload.traceio import load_trace, save_trace


@pytest.fixture
def small_trace():
    return generate_trace(TraceConfig(duration_days=0.1, seed=21))


class TestRoundTrip:
    def test_jobs_survive_round_trip(self, small_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        assert len(loaded.jobs) == len(small_trace.jobs)
        for original, restored in zip(small_trace.jobs, loaded.jobs):
            assert original == restored

    def test_config_survives_round_trip(self, small_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(small_trace, path)
        assert load_trace(path).config == small_trace.config

    def test_file_is_jsonl(self, small_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(small_trace, path)
        with path.open() as handle:
            for line in handle:
                json.loads(line)

    def test_header_carries_format_version(self, small_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(small_trace, path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format_version"] == 1


class TestErrors:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format_version": 99, "config": {}}) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_unknown_kind_rejected(self, small_trace, tmp_path):
        path = tmp_path / "bad.jsonl"
        save_trace(small_trace, path)
        lines = path.read_text().splitlines()
        corrupted = json.loads(lines[1])
        corrupted["kind"] = "quantum"
        lines[1] = json.dumps(corrupted)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)
