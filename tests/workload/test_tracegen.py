"""Synthetic-trace distributions against the published marginals."""

import random

import pytest

from repro.sim.clock import DAY, HOUR
from repro.workload.heat import heat_job
from repro.workload.tracegen import (
    Trace,
    TraceConfig,
    generate_trace,
    sample_cpu_runtime_s,
    sample_gpu_runtime_s,
    sample_requested_cpus,
)


@pytest.fixture(scope="module")
def week_trace() -> Trace:
    return generate_trace(TraceConfig(duration_days=7.0, seed=42))


class TestComposition:
    def test_cpu_to_gpu_ratio_is_three_to_one(self, week_trace):
        """Sec. VI-A: 75,000 CPU jobs vs 25,000 GPU jobs."""
        ratio = len(week_trace.cpu_jobs) / len(week_trace.gpu_jobs)
        assert ratio == pytest.approx(3.0, rel=0.15)

    def test_jobs_sorted_by_submit_time(self, week_trace):
        times = [job.submit_time for job in week_trace.jobs]
        assert times == sorted(times)

    def test_job_ids_unique(self, week_trace):
        ids = [job.job_id for job in week_trace.jobs]
        assert len(ids) == len(set(ids))

    def test_all_submits_inside_window(self, week_trace):
        assert all(0 <= job.submit_time < 7 * DAY for job in week_trace.jobs)

    def test_determinism(self):
        config = TraceConfig(duration_days=0.5, seed=9)
        a = generate_trace(config)
        b = generate_trace(config)
        assert [j.job_id for j in a.jobs] == [j.job_id for j in b.jobs]
        assert [j.submit_time for j in a.jobs] == [j.submit_time for j in b.jobs]

    def test_different_seeds_differ(self):
        a = generate_trace(TraceConfig(duration_days=0.5, seed=1))
        b = generate_trace(TraceConfig(duration_days=0.5, seed=2))
        assert [j.submit_time for j in a.jobs] != [j.submit_time for j in b.jobs]

    def test_cpu_only_users_never_submit_gpu_jobs(self, week_trace):
        """Users 15-20 are CPU-only (Fig. 12)."""
        for job in week_trace.gpu_jobs:
            assert job.tenant_id < 15


class TestRequestedCores:
    def test_fig2d_bucket_shares(self, week_trace):
        """76.1 % request 1-2 per GPU; 15.3 % request more than 10."""
        per_gpu = [
            job.requested_cpus / job.setup.gpus_per_node
            for job in week_trace.gpu_jobs
        ]
        small = sum(1 for r in per_gpu if r <= 2) / len(per_gpu)
        large = sum(1 for r in per_gpu if r > 10) / len(per_gpu)
        assert small == pytest.approx(0.761, abs=0.04)
        # The per-node cap clips some >10-per-GPU draws for multi-GPU jobs.
        assert 0.05 <= large <= 0.20

    def test_sample_requested_cpus_scales_with_gpus(self):
        rng = random.Random(0)
        draws = [sample_requested_cpus(rng, gpus_per_node=4) for _ in range(500)]
        assert all(1 <= d <= 26 for d in draws)
        assert any(d >= 8 for d in draws)

    def test_sample_requested_rejects_bad_gpus(self):
        with pytest.raises(ValueError):
            sample_requested_cpus(random.Random(0), gpus_per_node=0)


class TestRuntimes:
    def test_gpu_runtime_tail_fractions(self):
        """Sec. VI-F: 68.5 % run > 1 h, 39.6 % run > 2 h."""
        rng = random.Random(11)
        draws = [sample_gpu_runtime_s(rng) for _ in range(8000)]
        over_1h = sum(1 for d in draws if d > HOUR) / len(draws)
        over_2h = sum(1 for d in draws if d > 2 * HOUR) / len(draws)
        assert over_1h == pytest.approx(0.685, abs=0.03)
        assert over_2h == pytest.approx(0.396, abs=0.03)

    def test_gpu_runtime_bounds(self):
        rng = random.Random(12)
        draws = [sample_gpu_runtime_s(rng) for _ in range(2000)]
        assert min(draws) >= 10 * 60
        assert max(draws) <= 24 * HOUR

    def test_cpu_runtime_bounds(self):
        rng = random.Random(13)
        draws = [sample_cpu_runtime_s(rng) for _ in range(2000)]
        assert min(draws) >= 30.0
        assert max(draws) <= 12 * HOUR

    def test_iterations_consistent_with_runtime(self, week_trace):
        for job in week_trace.gpu_jobs[:50]:
            assert job.total_iterations >= 1


class TestDiurnalCpuArrivals:
    def test_cpu_arrivals_follow_daily_peak(self, week_trace):
        """Fig. 1's diurnal CPU pattern: the generator's peak window
        (centred on phase 0 with a -6 h phase shift) sees far more
        arrivals than the trough window."""
        in_peak, in_trough = 0, 0
        for job in week_trace.cpu_jobs:
            phase = job.submit_time % DAY
            if phase < DAY / 4 or phase >= 3 * DAY / 4:
                in_peak += 1
            else:
                in_trough += 1
        assert in_peak > 1.3 * in_trough


class TestHeatJobs:
    def test_heat_fraction(self, week_trace):
        """Sec. VI-E: ~0.5 % of CPU jobs are bandwidth-heavy."""
        heats = [job for job in week_trace.cpu_jobs if job.is_heat]
        fraction = len(heats) / len(week_trace.cpu_jobs)
        assert fraction == pytest.approx(0.005, abs=0.004)

    def test_heat_jobs_are_bandwidth_heavy(self, week_trace):
        for job in week_trace.cpu_jobs:
            if job.is_heat:
                assert job.bw_demand_gbps >= 40.0
            else:
                assert job.bw_demand_gbps <= 2.0

    def test_heat_job_factory(self):
        job = heat_job("h1", 0.0, threads=10)
        assert job.cores == 10
        assert job.bw_demand_gbps == pytest.approx(80.0)
        assert job.is_heat

    def test_heat_job_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            heat_job("h1", 0.0, threads=0)


class TestConfigValidation:
    def test_bad_duration(self):
        with pytest.raises(ValueError):
            TraceConfig(duration_days=0.0)

    def test_bad_heat_fraction(self):
        with pytest.raises(ValueError):
            TraceConfig(heat_fraction=1.5)

    def test_negative_rate(self):
        with pytest.raises(ValueError):
            TraceConfig(gpu_jobs_per_day=-1.0)

    def test_zero_rate_yields_empty_kind(self):
        trace = generate_trace(
            TraceConfig(duration_days=0.2, gpu_jobs_per_day=0.0, seed=5)
        )
        assert trace.gpu_jobs == []
        assert len(trace.cpu_jobs) > 0

    def test_duration_s(self):
        assert TraceConfig(duration_days=2.0).duration_s == 2 * DAY

    def test_jobs_of_tenant(self, week_trace):
        jobs = week_trace.jobs_of_tenant(15)
        assert jobs
        assert all(job.tenant_id == 15 for job in jobs)
