"""Arrival processes and tenant profiles."""

import random

import pytest

from repro.perfmodel.catalog import Domain
from repro.sim.clock import DAY, HOUR
from repro.workload.arrivals import DiurnalRate, poisson_arrivals
from repro.workload.tenants import (
    TenantKind,
    TenantProfile,
    paper_tenants,
    weights_by_tenant,
)


class TestDiurnalRate:
    def test_flat_when_amplitude_zero(self):
        rate = DiurnalRate(base_per_s=2.0)
        assert rate(0.0) == rate(6 * HOUR) == 2.0

    def test_peak_and_trough(self):
        rate = DiurnalRate(base_per_s=1.0, amplitude=0.5)
        quarter = DAY / 4
        assert rate(quarter) == pytest.approx(1.5)
        assert rate(3 * quarter) == pytest.approx(0.5)

    def test_never_negative(self):
        rate = DiurnalRate(base_per_s=1.0, amplitude=1.0)
        assert rate(3 * DAY / 4) == pytest.approx(0.0)

    def test_max_rate(self):
        assert DiurnalRate(2.0, 0.25).max_rate == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalRate(-1.0)
        with pytest.raises(ValueError):
            DiurnalRate(1.0, amplitude=1.5)
        with pytest.raises(ValueError):
            DiurnalRate(1.0, period_s=0.0)


class TestPoissonArrivals:
    def test_homogeneous_rate_approximates_expectation(self):
        rng = random.Random(1)
        rate = DiurnalRate(base_per_s=0.1)
        arrivals = list(poisson_arrivals(rate, rate.max_rate, 10000.0, rng))
        assert len(arrivals) == pytest.approx(1000, rel=0.15)

    def test_arrivals_sorted_and_in_window(self):
        rng = random.Random(2)
        rate = DiurnalRate(base_per_s=0.05, amplitude=0.5)
        arrivals = list(poisson_arrivals(rate, rate.max_rate, 5000.0, rng))
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= t < 5000.0 for t in arrivals)

    def test_diurnal_shape_shows_in_counts(self):
        rng = random.Random(3)
        rate = DiurnalRate(base_per_s=0.05, amplitude=0.9)
        arrivals = list(poisson_arrivals(rate, rate.max_rate, DAY, rng))
        first_half = sum(1 for t in arrivals if t < DAY / 2)
        second_half = len(arrivals) - first_half
        assert first_half > 1.5 * second_half

    def test_zero_envelope_yields_nothing(self):
        assert list(poisson_arrivals(lambda t: 0.0, 0.0, 100.0, random.Random(0))) == []

    def test_empty_window_yields_nothing(self):
        rate = DiurnalRate(base_per_s=1.0)
        assert (
            list(poisson_arrivals(rate, rate.max_rate, 5.0, random.Random(0), start_s=5.0))
            == []
        )

    def test_bad_envelope_raises(self):
        gen = poisson_arrivals(lambda t: 10.0, 1.0, 100.0, random.Random(0))
        with pytest.raises(ValueError):
            list(gen)

    def test_deterministic_given_seed(self):
        rate = DiurnalRate(base_per_s=0.02)
        a = list(poisson_arrivals(rate, rate.max_rate, 1000.0, random.Random(7)))
        b = list(poisson_arrivals(rate, rate.max_rate, 1000.0, random.Random(7)))
        assert a == b


class TestTenants:
    def test_twenty_users(self):
        assert len(paper_tenants()) == 20

    def test_users_15_to_20_are_cpu_only(self):
        """Fig. 12's note: ids 15-20 submit only CPU tasks."""
        for tenant in paper_tenants():
            if 15 <= tenant.tenant_id <= 20:
                assert tenant.kind is TenantKind.CPU_ONLY
                assert tenant.gpu_job_weight == 0.0
            else:
                assert tenant.gpu_job_weight > 0.0

    def test_research_lab_dominates_gpu_jobs(self):
        """Fig. 2a: the lab contributes most GPU jobs."""
        tenants = paper_tenants()
        lab = sum(
            t.gpu_job_weight
            for t in tenants
            if t.kind is TenantKind.RESEARCH_LAB
        )
        companies = sum(
            t.gpu_job_weight for t in tenants if t.kind is TenantKind.AI_COMPANY
        )
        assert lab > companies

    def test_companies_dominate_cpu_jobs(self):
        tenants = paper_tenants()
        lab = sum(
            t.cpu_job_weight
            for t in tenants
            if t.kind is TenantKind.RESEARCH_LAB
        )
        others = sum(
            t.cpu_job_weight
            for t in tenants
            if t.kind is not TenantKind.RESEARCH_LAB
        )
        assert others > lab

    def test_domain_mixes_sum_to_one(self):
        for tenant in paper_tenants():
            if tenant.gpu_job_weight > 0:
                assert sum(w for _, w in tenant.domain_mix) == pytest.approx(1.0)

    def test_weights_by_tenant(self):
        gpu, cpu = weights_by_tenant(paper_tenants())
        assert gpu[20] == 0.0
        assert cpu[20] > 0.0

    def test_cpu_only_cannot_have_gpu_weight(self):
        with pytest.raises(ValueError):
            TenantProfile(
                tenant_id=1,
                kind=TenantKind.CPU_ONLY,
                gpu_job_weight=1.0,
                cpu_job_weight=1.0,
                domain_mix=(),
                diurnal_amplitude=0.5,
            )

    def test_bad_domain_mix_rejected(self):
        with pytest.raises(ValueError):
            TenantProfile(
                tenant_id=1,
                kind=TenantKind.AI_COMPANY,
                gpu_job_weight=1.0,
                cpu_job_weight=1.0,
                domain_mix=((Domain.CV, 0.5),),
                diurnal_amplitude=0.5,
            )
