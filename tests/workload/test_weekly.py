"""Weekly (weekend-dip) arrival structure."""

import pytest

from repro.sim.clock import DAY, WEEK
from repro.workload.arrivals import DiurnalRate
from repro.workload.tracegen import TraceConfig, generate_trace


class TestWeekendFactor:
    def test_default_has_no_weekly_structure(self):
        rate = DiurnalRate(base_per_s=1.0)
        assert rate(0.0) == rate(5.5 * DAY)

    def test_weekend_days_are_scaled(self):
        rate = DiurnalRate(base_per_s=1.0, weekend_factor=0.5)
        weekday = rate(2 * DAY)
        weekend = rate(5.5 * DAY)
        assert weekend == pytest.approx(0.5 * weekday)

    def test_weekly_cycle_repeats(self):
        rate = DiurnalRate(base_per_s=1.0, weekend_factor=0.5)
        assert rate(5.5 * DAY) == rate(5.5 * DAY + WEEK)
        assert rate(1.0 * DAY) == rate(1.0 * DAY + WEEK)

    def test_weekend_boundaries(self):
        rate = DiurnalRate(base_per_s=1.0, weekend_factor=0.5)
        assert rate(5 * DAY + 1.0) == pytest.approx(0.5)
        assert rate(5 * DAY - 1.0) == pytest.approx(1.0)
        assert rate(7 * DAY + 1.0) == pytest.approx(1.0)

    def test_composes_with_diurnal_swing(self):
        rate = DiurnalRate(base_per_s=1.0, amplitude=0.5, weekend_factor=0.5)
        weekday_peak = rate(DAY / 4)
        weekend_peak = rate(5 * DAY + DAY / 4)
        assert weekend_peak == pytest.approx(0.5 * weekday_peak)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalRate(base_per_s=1.0, weekend_factor=0.0)
        with pytest.raises(ValueError):
            DiurnalRate(base_per_s=1.0, weekend_factor=1.5)


class TestTraceWeekendDip:
    def test_weekend_cpu_arrivals_dip(self):
        config = TraceConfig(
            duration_days=7.0,
            gpu_jobs_per_day=0.0,
            cpu_jobs_per_day=2000.0,
            weekend_factor=0.5,
            seed=33,
        )
        trace = generate_trace(config)
        weekday = [j for j in trace.cpu_jobs if (j.submit_time % WEEK) < 5 * DAY]
        weekend = [j for j in trace.cpu_jobs if (j.submit_time % WEEK) >= 5 * DAY]
        weekday_rate = len(weekday) / 5.0
        weekend_rate = len(weekend) / 2.0
        assert weekend_rate == pytest.approx(0.5 * weekday_rate, rel=0.15)

    def test_weekend_factor_round_trips_through_traceio(self, tmp_path):
        from repro.workload.traceio import load_trace, save_trace

        config = TraceConfig(
            duration_days=0.1, weekend_factor=0.7, seed=1
        )
        trace = generate_trace(config)
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        assert load_trace(path).config.weekend_factor == 0.7
