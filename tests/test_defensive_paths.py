"""Error-path coverage across modules: every guard must actually guard."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.mbm import BandwidthMonitor
from repro.config import ClusterConfig, NodeConfig, small_cluster
from repro.experiments.runner import SimulationRunner
from repro.metrics.collector import MetricsCollector
from repro.perfmodel.stages import TrainSetup
from repro.schedulers.fifo import FifoScheduler
from repro.workload.job import GpuJob


def _runner():
    return SimulationRunner(
        Cluster(small_cluster(nodes=1)), FifoScheduler(), sample_interval_s=60.0
    )


def _gpu(job_id="g1", iters=100):
    return GpuJob(
        job_id=job_id,
        tenant_id=1,
        submit_time=0.0,
        model_name="resnet50",
        setup=TrainSetup(1, 1),
        requested_cpus=2,
        total_iterations=iters,
    )


class TestRunnerGuards:
    def test_resize_to_zero_cores_rejected(self):
        runner = _runner()
        runner.submit_at(0.0, _gpu())
        runner.engine.run(until=1.0)
        with pytest.raises(ValueError):
            runner.resize_gpu_job_cores("g1", 0)

    def test_utilization_of_unknown_job_raises(self):
        with pytest.raises(KeyError):
            _runner().gpu_job_utilization("ghost")

    def test_expected_utilization_of_unknown_job_raises(self):
        with pytest.raises(KeyError):
            _runner().gpu_job_expected_utilization("ghost")

    def test_halve_unknown_cpu_job_raises(self):
        with pytest.raises(KeyError):
            _runner().halve_cpu_job_cores("ghost")

    def test_preempt_unknown_job_raises(self):
        with pytest.raises(RuntimeError):
            _runner().preempt_job("ghost", preserve_progress=False, reason="x")

    def test_throttle_on_node_without_mba_returns_false(self):
        cluster = Cluster(
            ClusterConfig(node_groups=((1, NodeConfig(mba_supported=False)),))
        )
        runner = SimulationRunner(
            cluster, FifoScheduler(), sample_interval_s=60.0
        )
        assert runner.throttle_cpu_job("any", 0) is False


class TestCollectorGuards:
    def test_started_before_submitted_raises(self):
        collector = MetricsCollector()
        with pytest.raises(KeyError):
            collector.job_started("ghost", 0.0, 2)

    def test_finished_before_submitted_raises(self):
        collector = MetricsCollector()
        with pytest.raises(KeyError):
            collector.job_finished("ghost", 0.0)


class TestMonitorGuards:
    def test_update_demand_of_unknown_job_raises(self):
        monitor = BandwidthMonitor(100.0)
        with pytest.raises(KeyError):
            monitor.update_demand("ghost", 5.0)

    def test_set_cap_of_unknown_job_raises(self):
        monitor = BandwidthMonitor(100.0)
        with pytest.raises(KeyError):
            monitor.set_cap("ghost", 5.0)

    def test_usage_of_unknown_job_raises(self):
        with pytest.raises(KeyError):
            BandwidthMonitor(100.0).usage_of("ghost")


class TestClusterGuards:
    def test_allocation_of_unknown_job_raises(self, tiny_cluster):
        with pytest.raises(KeyError):
            tiny_cluster.allocation_of("ghost")

    def test_allocate_on_missing_node_raises(self, tiny_cluster):
        with pytest.raises(IndexError):
            tiny_cluster.allocate("j", [(99, 1, 0)])
