"""DRF progressive filling and fairness."""

import pytest

from repro.perfmodel.stages import TrainSetup
from repro.schedulers.base import UsageLedger
from repro.schedulers.drf import DrfScheduler
from repro.workload.job import CpuJob, GpuJob


def _gpu(job_id, tenant, gpus=1, cpus=2):
    return GpuJob(
        job_id=job_id,
        tenant_id=tenant,
        submit_time=0.0,
        model_name="resnet50",
        setup=TrainSetup(1, gpus),
        requested_cpus=cpus,
        total_iterations=10,
    )


def _cpu(job_id, tenant, cores=2):
    return CpuJob(job_id=job_id, tenant_id=tenant, submit_time=0.0, cores=cores)


class TestUsageLedger:
    def test_start_and_finish(self):
        ledger = UsageLedger()
        ledger.start("j1", 1, cpus=4, gpus=2)
        assert ledger.usage_of(1).gpus == 2
        ledger.finish("j1")
        assert ledger.usage_of(1).gpus == 0

    def test_double_start_raises(self):
        ledger = UsageLedger()
        ledger.start("j1", 1, 1, 1)
        with pytest.raises(RuntimeError):
            ledger.start("j1", 1, 1, 1)

    def test_finish_unknown_is_silent(self):
        UsageLedger().finish("ghost")

    def test_dominant_share_picks_max(self):
        ledger = UsageLedger()
        ledger.start("j1", 1, cpus=50, gpus=1)
        assert ledger.dominant_share(1, 100, 100) == pytest.approx(0.5)

    def test_dominant_share_ignores_zero_capacity(self):
        ledger = UsageLedger()
        ledger.start("j1", 1, cpus=50, gpus=0)
        assert ledger.dominant_share(1, 100, 0) == pytest.approx(0.5)

    def test_negative_usage_raises(self):
        ledger = UsageLedger()
        ledger.start("j1", 1, 1, 1)
        ledger.finish("j1")
        usage = ledger.usage_of(1)
        with pytest.raises(RuntimeError):
            usage.remove(1, 0)


class TestProgressiveFilling:
    def test_alternates_between_equal_tenants(self, tiny_cluster):
        scheduler = DrfScheduler()
        for index in range(3):
            scheduler.submit(_gpu(f"a{index}", tenant=1), 0.0)
            scheduler.submit(_gpu(f"b{index}", tenant=2), 0.0)
        decisions = scheduler.schedule(tiny_cluster, 1.0)
        owners = [d.job.tenant_id for d in decisions[:4]]
        assert owners == [1, 2, 1, 2]

    def test_low_share_tenant_goes_first(self, tiny_cluster):
        scheduler = DrfScheduler()
        scheduler.submit(_gpu("a0", tenant=1, gpus=4), 0.0)
        decisions = scheduler.schedule(tiny_cluster, 0.0)
        assert [d.job.job_id for d in decisions] == ["a0"]
        # Tenant 1 now holds 4 of 8 GPUs; tenant 2 should be served first.
        scheduler.submit(_gpu("a1", tenant=1), 1.0)
        scheduler.submit(_gpu("b0", tenant=2), 1.0)
        decisions = scheduler.schedule(tiny_cluster, 1.0)
        assert [d.job.job_id for d in decisions][:1] == ["b0"]

    def test_blocked_tenant_is_skipped_not_fatal(self, tiny_cluster):
        """DRF skips a tenant whose head does not fit (work conserving)."""
        scheduler = DrfScheduler()
        tiny_cluster.allocate("x", [(0, 1, 4), (1, 1, 0)])
        scheduler.submit(_gpu("big", tenant=1, gpus=4, cpus=28), 0.0)
        scheduler.submit(_gpu("small", tenant=2), 0.0)
        decisions = scheduler.schedule(tiny_cluster, 0.0)
        assert [d.job.job_id for d in decisions] == ["small"]

    def test_within_tenant_fifo_is_strict(self, tiny_cluster):
        scheduler = DrfScheduler()
        tiny_cluster.allocate("x", [(0, 1, 4), (1, 1, 0)])
        scheduler.submit(_gpu("big", tenant=1, gpus=4, cpus=28), 0.0)
        scheduler.submit(_gpu("later", tenant=1), 1.0)
        decisions = scheduler.schedule(tiny_cluster, 1.0)
        assert decisions == []

    def test_finish_lowers_share(self, tiny_cluster):
        scheduler = DrfScheduler()
        job = _gpu("a0", tenant=1, gpus=4)
        scheduler.submit(job, 0.0)
        scheduler.schedule(tiny_cluster, 0.0)
        scheduler.job_finished(job, 5.0)
        assert scheduler._ledger.usage_of(1).gpus == 0

    def test_mixed_cpu_and_gpu_tenants(self, tiny_cluster):
        scheduler = DrfScheduler()
        scheduler.submit(_cpu("c0", tenant=3, cores=4), 0.0)
        scheduler.submit(_gpu("g0", tenant=1), 0.0)
        decisions = scheduler.schedule(tiny_cluster, 0.0)
        assert {d.job.job_id for d in decisions} == {"c0", "g0"}

    def test_preempted_job_requeues_at_head_and_releases_share(self, tiny_cluster):
        scheduler = DrfScheduler()
        job = _gpu("a0", tenant=1, gpus=2)
        scheduler.submit(job, 0.0)
        scheduler.schedule(tiny_cluster, 0.0)
        scheduler.job_preempted(job, 1.0, preserve_progress=True)
        assert scheduler._ledger.usage_of(1).gpus == 0
        assert scheduler.pending_jobs()[0].job_id == "a0"

    def test_pending_jobs_sorted_by_submit(self):
        scheduler = DrfScheduler()
        scheduler.submit(_gpu("late", tenant=1), 0.0)
        scheduler.submit(_cpu("early", tenant=2), 0.0)
        jobs = scheduler.pending_jobs()
        assert [j.job_id for j in jobs] == ["early", "late"]
