"""FreeState snapshots and best-fit placement."""

import pytest

from repro.perfmodel.stages import TrainSetup
from repro.schedulers.placement import FreeState, place_cpu_job, place_gpu_job
from repro.workload.job import CpuJob, GpuJob


def _gpu_job(num_nodes=1, gpus_per_node=1, requested_cpus=2):
    return GpuJob(
        job_id="g",
        tenant_id=1,
        submit_time=0.0,
        model_name="resnet50",
        setup=TrainSetup(num_nodes, gpus_per_node),
        requested_cpus=requested_cpus,
        total_iterations=10,
    )


def _cpu_job(cores=4):
    return CpuJob(job_id="c", tenant_id=1, submit_time=0.0, cores=cores)


class TestFreeState:
    def test_of_cluster(self, tiny_cluster):
        tiny_cluster.allocate("x", [(0, 4, 1)])
        free = FreeState.of(tiny_cluster)
        assert free.free_of(0) == (24, 3)
        assert free.free_of(1) == (28, 4)

    def test_of_cluster_among(self, tiny_cluster):
        free = FreeState.of(tiny_cluster, among=[1])
        assert free.node_ids() == [1]

    def test_commit_deducts(self, tiny_cluster):
        free = FreeState.of(tiny_cluster)
        free.commit([(0, 4, 2)])
        assert free.free_of(0) == (24, 2)

    def test_commit_overcommit_raises(self, tiny_cluster):
        free = FreeState.of(tiny_cluster)
        with pytest.raises(RuntimeError):
            free.commit([(0, 100, 0)])

    def test_add_returns_capacity(self, tiny_cluster):
        tiny_cluster.allocate("x", [(0, 28, 4)])
        free = FreeState.of(tiny_cluster)
        free.add(0, 28, 4)
        assert free.free_of(0) == (28, 4)


class TestPlaceGpuJob:
    def test_simple_placement(self, tiny_cluster):
        free = FreeState.of(tiny_cluster)
        placements = place_gpu_job(_gpu_job(), free)
        assert placements == [(0, 2, 1)]

    def test_best_fit_prefers_tightest_gpus(self, tiny_cluster):
        tiny_cluster.allocate("x", [(0, 2, 3)])
        free = FreeState.of(tiny_cluster)
        placements = place_gpu_job(_gpu_job(), free)
        assert placements[0][0] == 0  # the node with only 1 free GPU

    def test_respects_core_requirement(self, tiny_cluster):
        tiny_cluster.allocate("x", [(0, 27, 0)])
        free = FreeState.of(tiny_cluster)
        placements = place_gpu_job(_gpu_job(requested_cpus=4), free)
        assert placements[0][0] == 1

    def test_cpus_override(self, tiny_cluster):
        free = FreeState.of(tiny_cluster)
        placements = place_gpu_job(_gpu_job(requested_cpus=2), free, cpus_per_node=7)
        assert placements[0][1] == 7

    def test_multi_node_needs_distinct_nodes(self, tiny_cluster):
        free = FreeState.of(tiny_cluster)
        placements = place_gpu_job(_gpu_job(num_nodes=2, gpus_per_node=2), free)
        assert len({node_id for node_id, _, _ in placements}) == 2

    def test_multi_node_fails_without_enough_nodes(self, tiny_cluster):
        tiny_cluster.allocate("x", [(1, 1, 4)])
        free = FreeState.of(tiny_cluster)
        assert place_gpu_job(_gpu_job(num_nodes=2, gpus_per_node=2), free) is None

    def test_among_restricts_candidates(self, tiny_cluster):
        free = FreeState.of(tiny_cluster)
        placements = place_gpu_job(_gpu_job(), free, among={1})
        assert placements[0][0] == 1

    def test_returns_none_when_full(self, tiny_cluster):
        tiny_cluster.allocate("x", [(0, 2, 4), (1, 2, 4)])
        free = FreeState.of(tiny_cluster)
        assert place_gpu_job(_gpu_job(), free) is None


class TestPlaceCpuJob:
    def test_best_fit_on_cores(self, tiny_cluster):
        tiny_cluster.allocate("x", [(0, 20, 0)])
        free = FreeState.of(tiny_cluster)
        placements = place_cpu_job(_cpu_job(cores=4), free)
        assert placements == [(0, 4, 0)]

    def test_none_when_no_cores(self, tiny_cluster):
        tiny_cluster.allocate("x", [(0, 28, 0), (1, 28, 0)])
        free = FreeState.of(tiny_cluster)
        assert place_cpu_job(_cpu_job(), free) is None

    def test_among(self, tiny_cluster):
        free = FreeState.of(tiny_cluster)
        placements = place_cpu_job(_cpu_job(), free, among={1})
        assert placements[0][0] == 1


class TestHealthAwarePlacement:
    """FreeState with ``now`` consults the cluster's health tracker:
    quarantined nodes offer zero capacity; suspect/probation nodes are
    only used when no healthy node fits."""

    def _quarantine(self, cluster, node_id, at=0.0):
        for i in range(3):
            cluster.health.record_failure(node_id, at + i, kind="crash")

    def test_quarantined_node_offers_no_capacity(self, tiny_cluster):
        self._quarantine(tiny_cluster, 0)
        free = FreeState.of(tiny_cluster, now=10.0)
        assert free.free_of(0) == (0, 0)
        assert free.free_of(1) == (28, 4)

    def test_gpu_job_skips_quarantined_node(self, tiny_cluster):
        self._quarantine(tiny_cluster, 0)
        free = FreeState.of(tiny_cluster, now=10.0)
        placements = place_gpu_job(_gpu_job(), free)
        assert placements[0][0] == 1

    def test_cpu_job_skips_quarantined_node(self, tiny_cluster):
        self._quarantine(tiny_cluster, 1)
        free = FreeState.of(tiny_cluster, now=10.0)
        placements = place_cpu_job(_cpu_job(), free)
        assert placements[0][0] == 0

    def test_all_nodes_quarantined_places_nothing(self, tiny_cluster):
        self._quarantine(tiny_cluster, 0)
        self._quarantine(tiny_cluster, 1)
        free = FreeState.of(tiny_cluster, now=10.0)
        assert place_gpu_job(_gpu_job(), free) is None
        assert place_cpu_job(_cpu_job(), free) is None

    def test_suspect_node_deprioritized_not_excluded(self, tiny_cluster):
        # One strike: node 0 is SUSPECT.  Best-fit alone would pick it
        # (equal free resources, lowest id); the penalty flips the choice.
        tiny_cluster.health.record_failure(0, 0.0, kind="crash")
        free = FreeState.of(tiny_cluster, now=10.0)
        assert free.placement_penalty(0) == 1
        assert free.placement_penalty(1) == 0
        assert place_gpu_job(_gpu_job(), free)[0][0] == 1
        assert place_cpu_job(_cpu_job(), free)[0][0] == 1

    def test_suspect_node_still_used_as_last_resort(self, tiny_cluster):
        tiny_cluster.health.record_failure(0, 0.0, kind="crash")
        tiny_cluster.allocate("x", [(1, 28, 4)])  # node 1 is full
        free = FreeState.of(tiny_cluster, now=10.0)
        assert place_gpu_job(_gpu_job(), free)[0][0] == 0

    def test_without_now_health_is_ignored(self, tiny_cluster):
        self._quarantine(tiny_cluster, 0)
        free = FreeState.of(tiny_cluster)
        assert free.free_of(0) == (28, 4)

    def test_healthy_cluster_penalties_are_zero(self, tiny_cluster):
        free = FreeState.of(tiny_cluster, now=10.0)
        assert free.placement_penalty(0) == 0
        assert free.placement_penalty(1) == 0


class TestFreeStateMemo:
    """The whole-cluster snapshot is memoized incrementally: full
    rebuilds only for unattributed (coarse) changes, a partial refresh
    of just the dirtied nodes for attributed mutations, a set swap for
    pure health-ordering changes, and byte-for-byte reuse otherwise."""

    def test_repeat_snapshot_reuses_scan(self, tiny_cluster):
        FreeState.of(tiny_cluster, now=0.0)
        before = FreeState.rebuilds
        again = FreeState.of(tiny_cluster, now=0.0)
        assert FreeState.rebuilds == before
        assert again.free_of(0) == (28, 4)

    def test_mutation_refreshes_only_touched_nodes(self, tiny_cluster):
        FreeState.of(tiny_cluster, now=0.0)
        rebuilds = FreeState.rebuilds
        refreshes = FreeState.refreshes
        tiny_cluster.allocate("x", [(0, 4, 1)])
        fresh = FreeState.of(tiny_cluster, now=0.0)
        # An attributed mutation partially refreshes the cache (node 0
        # only) instead of rebuilding the whole snapshot.
        assert FreeState.rebuilds == rebuilds
        assert FreeState.refreshes == refreshes + 1
        assert fresh.free_of(0) == (24, 3)
        assert fresh.free_of(1) == (28, 4)
        FreeState.of(tiny_cluster, now=0.0)
        assert FreeState.refreshes == refreshes + 1  # second call reuses

    def test_cached_snapshots_are_independent(self, tiny_cluster):
        first = FreeState.of(tiny_cluster, now=0.0)
        first.commit([(0, 8, 2)])
        second = FreeState.of(tiny_cluster, now=0.0)
        # A cache hit must hand back the *pre-commit* free capacity: the
        # commit mutated the first snapshot, never the shared cache.
        assert second.free_of(0) == (28, 4)

    def test_health_strike_swaps_penalties_without_rescan(self, tiny_cluster):
        FreeState.of(tiny_cluster, now=0.0)
        rebuilds = FreeState.rebuilds
        refreshes = FreeState.refreshes
        tiny_cluster.health.record_failure(0, 0.0, kind="crash")
        flagged = FreeState.of(tiny_cluster, now=0.0)
        # A SUSPECT transition changes best-fit ordering, not capacity:
        # the cache swaps the de-prioritized set and reads no node.
        assert FreeState.rebuilds == rebuilds
        assert FreeState.refreshes == refreshes
        assert flagged.placement_penalty(0) == 1
        assert flagged.placement_penalty(1) == 0

    def test_quarantine_refreshes_the_quarantined_node(self, tiny_cluster):
        FreeState.of(tiny_cluster, now=0.0)
        rebuilds = FreeState.rebuilds
        for i in range(3):
            tiny_cluster.health.record_failure(0, float(i), kind="crash")
        gated = FreeState.of(tiny_cluster, now=10.0)
        # Quarantine zeroes the node's offered capacity; only the nodes
        # entering/leaving the quarantine set are re-read.
        assert FreeState.rebuilds == rebuilds
        assert gated.free_of(0) == (0, 0)
        assert gated.free_of(1) == (28, 4)

    def test_now_change_alone_reuses_cache(self, tiny_cluster):
        FreeState.of(tiny_cluster, now=0.0)
        before = FreeState.rebuilds
        later = FreeState.of(tiny_cluster, now=30.0)
        # Free capacity is time-independent; with no health transitions
        # between the two instants the snapshot is identical.
        assert FreeState.rebuilds == before
        assert later.free_of(0) == (28, 4)

    def test_among_bypasses_cache(self, tiny_cluster):
        FreeState.of(tiny_cluster, now=0.0)
        before = FreeState.rebuilds
        restricted = FreeState.of(tiny_cluster, among=[1], now=0.0)
        assert FreeState.rebuilds == before + 1
        assert restricted.node_ids() == [1]

    def test_full_rescan_env_bypasses_cache(self, tiny_cluster, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_RESCAN", "1")
        FreeState.of(tiny_cluster, now=0.0)
        before = FreeState.rebuilds
        fresh = FreeState.of(tiny_cluster, now=0.0)
        assert FreeState.rebuilds == before + 1
        assert fresh.free_of(0) == (28, 4)
