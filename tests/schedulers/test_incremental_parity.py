"""Property test: incremental scheduling is byte-identical to full rescan.

Each (policy, seed, fault setting) scenario runs twice — once with the
dirty-set machinery active (pass skipping, share heaps, partial snapshot
refresh) and once under ``REPRO_FULL_RESCAN=1``, the reference behaviour
that linearly rescans everything on every pass.  The two runs must agree
on:

* the **decision stream** — every pass that produced decisions, as
  ``(time, serialized decisions)`` in order.  Passes producing zero
  decisions are excluded from the comparison: skipping them outright is
  exactly what the incremental run is allowed (and supposed) to do;
* every scalar outcome of the run, including ``events_fired`` — a
  skipped pass still fires its event, so the event sequence (and with it
  every tie-break downstream) is untouched.

See docs/scheduler-internals.md for the argument of *why* these must be
equal; this test is the empirical check that the argument holds over the
full simulator, faults and health tracking included.
"""

import os

import pytest

from repro.config import small_cluster
from repro.experiments.scenarios import (
    Scenario,
    default_schedulers,
    run_scenario,
    small_scenario,
)
from repro.faults import FaultConfig
from repro.workload.tracegen import TraceConfig

POLICIES = ("fifo", "drf", "coda")
SEEDS = (0, 1, 2)

#: Aggressive enough that a 0.2-day / 6-node run sees several node
#: crashes, GPU failures and (via repeated strikes) quarantines.
_FAULTS = FaultConfig(
    seed=5,
    node_mtbf_s=4 * 3600.0,
    node_mttr_s=900.0,
    gpu_mtbf_s=8 * 3600.0,
)

_SCALARS = (
    "finished_gpu_jobs",
    "finished_cpu_jobs",
    "preemptions",
    "events_fired",
    "restarts",
    "node_downtime_s",
    "quarantines",
    "quarantine_s",
    "dead_jobs",
    "flap_suppressions",
)


def _serialize(decision):
    if hasattr(decision, "placements"):
        return ("start", decision.job.job_id, tuple(decision.placements))
    return (
        "preempt",
        decision.job_id,
        decision.reason,
        decision.preserve_progress,
    )


def _storm_scenario(seed):
    """A flooded 4-node cluster: queues stay deep, so most passes are
    skippable and the share heaps / placement memos do real work —
    the regime where an incremental bug would actually show."""
    return Scenario(
        cluster_config=small_cluster(nodes=4),
        trace_config=TraceConfig(
            duration_days=0.05,
            gpu_jobs_per_day=1200.0,
            cpu_jobs_per_day=300.0,
            seed=seed,
        ),
        drain_s=3600.0,
    )


def _run(policy, seed, faulted, full_rescan, *, storm=False):
    """One complete run; returns (non-empty decision stream, scalars)."""
    if storm:
        scenario = _storm_scenario(seed)
    else:
        scenario = small_scenario(duration_days=0.2, seed=seed, nodes=6)
    if faulted:
        scenario = scenario.with_faults(_FAULTS)
    # The env var must be decided *before* the scheduler is built: gates
    # and heaps read it at construction time.
    os.environ.pop("REPRO_FULL_RESCAN", None)
    if full_rescan:
        os.environ["REPRO_FULL_RESCAN"] = "1"
    try:
        scheduler = default_schedulers()[policy]()
        decisions = []
        inner = scheduler.schedule

        def recording_schedule(cluster, now):
            batch = inner(cluster, now)
            if batch:
                decisions.append(
                    (now, tuple(_serialize(d) for d in batch))
                )
            return batch

        scheduler.schedule = recording_schedule  # type: ignore[method-assign]
        result = run_scenario(scenario, scheduler, sample_interval_s=1800.0)
    finally:
        os.environ.pop("REPRO_FULL_RESCAN", None)
    return decisions, {name: getattr(result, name) for name in _SCALARS}


@pytest.mark.parametrize("faulted", (False, True), ids=("clean", "faulted"))
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy", POLICIES)
def test_incremental_matches_full_rescan(policy, seed, faulted):
    incremental, inc_scalars = _run(policy, seed, faulted, full_rescan=False)
    reference, ref_scalars = _run(policy, seed, faulted, full_rescan=True)

    assert inc_scalars == ref_scalars
    assert len(incremental) == len(reference)
    for inc_entry, ref_entry in zip(incremental, reference):
        assert inc_entry == ref_entry
    # The runs above did real work; an empty stream would mean the
    # recorder never saw a decision and the test proved nothing.
    assert incremental, "scenario produced no scheduling decisions"


@pytest.mark.parametrize("faulted", (False, True), ids=("clean", "faulted"))
@pytest.mark.parametrize("policy", POLICIES)
def test_incremental_matches_full_rescan_under_congestion(policy, faulted):
    incremental, inc_scalars = _run(
        policy, 0, faulted, full_rescan=False, storm=True
    )
    reference, ref_scalars = _run(
        policy, 0, faulted, full_rescan=True, storm=True
    )

    assert inc_scalars == ref_scalars
    assert incremental == reference
    assert incremental, "storm scenario produced no scheduling decisions"
