"""Incremental CPU-array census: the maintained maps vs a fresh walk.

The census feeding ``_place_cpu_normal`` is maintained incrementally
(``job_started`` / ``_forget`` / ``job_failed`` / ``cpu_job_resized``)
instead of being rebuilt from the cluster on every pass.  The placement
decision stream is keyed on these integers, so the maps must equal a
fresh cluster walk at every single census — including through failures,
restarts, and eliminator halvings.
"""

from repro.core.coda import CodaScheduler
from repro.core.multiarray import MultiArrayScheduler
from repro.experiments.scenarios import run_scenario, small_scenario
from repro.faults import FaultConfig
from repro.health import HealthConfig, RestartPolicy


def test_census_matches_walk_throughout_faulted_run(monkeypatch):
    """Every census served during a faulted end-to-end run must be
    entry-for-entry identical to an uncached cluster walk."""
    checks = {"count": 0}
    orig = MultiArrayScheduler._cpu_census

    def checked(self, cluster, preempted):
        result = orig(self, cluster, preempted)
        walk = self._cpu_census_build(cluster, preempted)
        assert result == walk
        checks["count"] += 1
        return result

    monkeypatch.setattr(MultiArrayScheduler, "_cpu_census", checked)
    scenario = small_scenario(duration_days=0.2, seed=5).with_faults(
        FaultConfig(seed=7, node_mtbf_s=2 * 3600.0)
    )
    run_scenario(
        scenario,
        CodaScheduler(restart_policy=RestartPolicy(max_restarts=3)),
        health_config=HealthConfig(quarantine_threshold=1.0),
    )
    assert checks["count"] > 0


def test_cpu_job_resized_folds_the_delta():
    sched = CodaScheduler()
    sched._cpu_node["j"] = 3
    sched._cpu_cores["j"] = 8
    sched._cpu_used[3] = 8
    sched.cpu_job_resized("j", 4, 0.0)
    assert sched._cpu_used == {3: 4}
    assert sched._cpu_cores["j"] == 4


def test_cpu_job_resized_ignores_untracked_jobs():
    sched = CodaScheduler()
    sched.cpu_job_resized("ghost", 2, 0.0)
    assert sched._cpu_used == {}
    assert sched._cpu_cores == {}
