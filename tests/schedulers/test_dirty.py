"""PassGate windows, ShareHeap/linear-scan equivalence, skip accounting."""

import random
from collections import deque

import pytest

from repro import profiling
from repro.config import small_cluster
from repro.experiments.scenarios import (
    Scenario,
    default_schedulers,
    run_scenario,
)
from repro.schedulers.base import ShareHeap, UsageLedger
from repro.schedulers.dirty import PassGate
from repro.workload.tracegen import TraceConfig


class _FakeCluster:
    """Just enough of a Cluster for the gate: a freed-capacity counter."""

    def __init__(self):
        self.capacity_freed = 0


class TestPassGate:
    def test_starts_all_dirty(self):
        cluster = _FakeCluster()
        gate = PassGate(("a", "b"))
        assert gate.should_scan("a", cluster)
        assert gate.should_scan("b", cluster)
        assert not gate.can_skip_pass(cluster)

    def test_pass_done_arms_the_skip(self):
        cluster = _FakeCluster()
        gate = PassGate(("a", "b"))
        gate.pass_done(cluster)
        assert not gate.should_scan("a", cluster)
        assert gate.can_skip_pass(cluster)

    def test_mark_dirties_only_that_group(self):
        cluster = _FakeCluster()
        gate = PassGate(("a", "b"))
        gate.pass_done(cluster)
        gate.mark("a")
        assert gate.should_scan("a", cluster)
        assert not gate.should_scan("b", cluster)
        assert not gate.can_skip_pass(cluster)

    def test_freed_capacity_dirties_every_group(self):
        cluster = _FakeCluster()
        gate = PassGate(("a", "b"))
        gate.pass_done(cluster)
        cluster.capacity_freed += 1
        assert gate.should_scan("a", cluster)
        assert gate.should_scan("b", cluster)
        assert not gate.can_skip_pass(cluster)
        gate.pass_done(cluster)
        assert gate.can_skip_pass(cluster)

    def test_mark_all_forgets_the_freed_reading(self):
        cluster = _FakeCluster()
        gate = PassGate(("a",))
        gate.pass_done(cluster)
        gate.mark_all()
        assert gate.should_scan("a", cluster)
        assert not gate.can_skip_pass(cluster)

    def test_full_rescan_env_disables_the_gate(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_RESCAN", "1")
        cluster = _FakeCluster()
        gate = PassGate(("a",))
        gate.pass_done(cluster)
        assert not gate.enabled
        assert gate.should_scan("a", cluster)
        assert not gate.can_skip_pass(cluster)


def _linear_min(ledger, queues, blocked, total_cpus, total_gpus):
    """The reference selection ShareHeap must reproduce exactly."""
    best = None
    for tenant_id, queue in queues.items():
        if not queue or tenant_id in blocked:
            continue
        key = (
            ledger.dominant_share(tenant_id, total_cpus, total_gpus),
            tenant_id,
        )
        if best is None or key < best:
            best = key
    return best


class TestShareHeapEquivalence:
    """Drive a heap and the linear scan through randomized pass cycles
    (submits, starts, finishes, blocked tenants) and assert they pick the
    same tenant at every single selection point."""

    TOTAL_CPUS = 64
    TOTAL_GPUS = 16

    def test_matches_linear_scan_across_randomized_passes(self):
        rng = random.Random(1234)
        ledger = UsageLedger()
        heap = ShareHeap(ledger)
        heap.configure(self.TOTAL_CPUS, self.TOTAL_GPUS)
        queues = {tenant_id: deque() for tenant_id in range(6)}
        running = []
        job_seq = 0

        heap.rebuild(queues)
        for _ in range(60):
            # Mutations between passes, maintaining the heap exactly the
            # way the DRF policy does.
            for _ in range(rng.randrange(4)):
                tenant_id = rng.randrange(6)
                job = (f"j{job_seq}", rng.randrange(1, 9), rng.randrange(3))
                job_seq += 1
                was_empty = not queues[tenant_id]
                queues[tenant_id].append(job)
                if was_empty:
                    heap.push(tenant_id)
            for _ in range(rng.randrange(3)):
                if not running:
                    break
                job_id, tenant_id = running.pop(rng.randrange(len(running)))
                footprint = ledger.finish(job_id)
                assert footprint is not None and footprint[0] == tenant_id
                if queues[tenant_id]:
                    heap.push(tenant_id)

            # One scheduling pass: repeatedly select, randomly either
            # "place" the head job or declare the tenant blocked.
            blocked = set()
            while True:
                entry = heap.pop_min(queues, blocked)
                reference = _linear_min(
                    ledger, queues, blocked, self.TOTAL_CPUS, self.TOTAL_GPUS
                )
                assert entry == reference
                if entry is None:
                    break
                _, tenant_id = entry
                if rng.random() < 0.5:
                    job_id, cpus, gpus = queues[tenant_id].popleft()
                    ledger.start(job_id, tenant_id, cpus, gpus)
                    running.append((job_id, tenant_id))
                    if queues[tenant_id]:
                        heap.push(tenant_id)
                else:
                    blocked.add(tenant_id)
                    heap.stash(entry)
            heap.flush_stash()


@pytest.mark.parametrize("policy", ("fifo", "drf", "coda"))
def test_skipped_passes_book_under_schedule_skip(policy):
    """A skipped pass must not inflate ``schedule-pass``: it books under
    its own ``schedule-skip`` timer and the ``schedule-skips`` counter.

    Needs a congested cluster — on an idle one every pass is triggered by
    a submit-to-empty-queue or a completion, so nothing is skippable."""
    scenario = Scenario(
        cluster_config=small_cluster(nodes=4),
        trace_config=TraceConfig(
            duration_days=0.05,
            gpu_jobs_per_day=1200.0,
            cpu_jobs_per_day=300.0,
            seed=0,
        ),
        drain_s=3600.0,
    )
    profiler = profiling.enable()
    try:
        result = run_scenario(
            scenario,
            default_schedulers()[policy](),
            sample_interval_s=3600.0,
        )
    finally:
        profiling.disable()
    assert result.events_fired > 0
    assert profiler.counters.get("schedule-skips", 0) > 0
    assert "schedule-skip" in profiler.timers
    assert "schedule-pass" in profiler.timers
