"""Property test: lazy repricing and timers are byte-identical to eager.

Each (policy, seed, fault setting) scenario runs twice — once with the
lazy machinery active (validate-on-pop completion timers, epoch-keyed
reprice memos, the activity-indexed monitor tick) and once under
``REPRO_EAGER_RESCHEDULE=1``, the reference behaviour that re-prices
every touched job from scratch, cancel+reschedules its completion on
every touch, and ticks every node on every monitor pass.  The two runs
must agree on:

* the **decision stream** — every pass that produced decisions, as
  ``(time, serialized decisions)`` in order;
* every scalar outcome.  ``events_fired`` is compared modulo stale
  timer fires: a lazy run fires extra ``completion-stale`` events (old
  timers surfacing after their completion moved later), each of which
  only re-arms and returns, so
  ``lazy.events_fired - lazy.stale_timer_fires == eager.events_fired``.

The faulted leg turns on telemetry dropouts and CPU stragglers on top of
crashes and GPU failures: stragglers are the main source of later-moving
completions (stale fires), and dropouts exercise the activity-index
back-fill of MBM sample timestamps.  See docs/scheduler-internals.md
("Lazy completion timers") for the argument of *why* these must be
equal; this test is the empirical check over the full simulator.
"""

import os

import pytest

from repro.experiments.scenarios import (
    Scenario,
    default_schedulers,
    run_scenario,
    small_scenario,
)
from repro.config import small_cluster
from repro.faults import FaultConfig
from repro.workload.tracegen import TraceConfig

POLICIES = ("fifo", "drf", "coda")
SEEDS = (0, 1, 2)

#: Aggressive enough that a 0.2-day / 6-node run sees node crashes, GPU
#: failures, quarantines, telemetry blackouts and straggler episodes.
_FAULTS = FaultConfig(
    seed=5,
    node_mtbf_s=4 * 3600.0,
    node_mttr_s=900.0,
    gpu_mtbf_s=8 * 3600.0,
    telemetry_mtbf_s=2 * 3600.0,
    telemetry_outage_s=600.0,
    straggler_interval_s=1800.0,
    straggler_duration_s=900.0,
)

_SCALARS = (
    "finished_gpu_jobs",
    "finished_cpu_jobs",
    "preemptions",
    "restarts",
    "node_downtime_s",
    "quarantines",
    "quarantine_s",
    "dead_jobs",
    "flap_suppressions",
)


def _serialize(decision):
    if hasattr(decision, "placements"):
        return ("start", decision.job.job_id, tuple(decision.placements))
    return (
        "preempt",
        decision.job_id,
        decision.reason,
        decision.preserve_progress,
    )


def _storm_scenario(seed):
    """A flooded 4-node cluster: co-location stays dense, so throttles,
    repricing fan-out and eliminator work are constant — the regime where
    a memo or stale-timer bug would actually show."""
    return Scenario(
        cluster_config=small_cluster(nodes=4),
        trace_config=TraceConfig(
            duration_days=0.05,
            gpu_jobs_per_day=1200.0,
            cpu_jobs_per_day=300.0,
            seed=seed,
        ),
        drain_s=3600.0,
    )


def _run(policy, seed, faulted, eager, *, storm=False):
    """One complete run; returns (non-empty decision stream, scalars,
    events_fired, stale_timer_fires)."""
    if storm:
        scenario = _storm_scenario(seed)
    else:
        scenario = small_scenario(duration_days=0.2, seed=seed, nodes=6)
    if faulted:
        scenario = scenario.with_faults(_FAULTS)
    # The env var must be decided *before* the runner is built: the lazy
    # machinery reads it once at construction time.
    os.environ.pop("REPRO_EAGER_RESCHEDULE", None)
    if eager:
        os.environ["REPRO_EAGER_RESCHEDULE"] = "1"
    try:
        scheduler = default_schedulers()[policy]()
        decisions = []
        inner = scheduler.schedule

        def recording_schedule(cluster, now):
            batch = inner(cluster, now)
            if batch:
                decisions.append((now, tuple(_serialize(d) for d in batch)))
            return batch

        scheduler.schedule = recording_schedule  # type: ignore[method-assign]
        result = run_scenario(scenario, scheduler, sample_interval_s=1800.0)
    finally:
        os.environ.pop("REPRO_EAGER_RESCHEDULE", None)
    return (
        decisions,
        {name: getattr(result, name) for name in _SCALARS},
        result.events_fired,
        result.stale_timer_fires,
    )


def _assert_parity(lazy_run, eager_run):
    lazy, lazy_scalars, lazy_events, lazy_stale = lazy_run
    eager, eager_scalars, eager_events, eager_stale = eager_run

    assert eager_stale == 0, "eager timers must never fire stale"
    assert lazy_events - lazy_stale == eager_events
    assert lazy_scalars == eager_scalars
    assert len(lazy) == len(eager)
    for lazy_entry, eager_entry in zip(lazy, eager):
        assert lazy_entry == eager_entry
    # The runs above did real work; an empty stream would mean the
    # recorder never saw a decision and the test proved nothing.
    assert lazy, "scenario produced no scheduling decisions"


@pytest.mark.parametrize("faulted", (False, True), ids=("clean", "faulted"))
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy", POLICIES)
def test_lazy_matches_eager(policy, seed, faulted):
    _assert_parity(
        _run(policy, seed, faulted, eager=False),
        _run(policy, seed, faulted, eager=True),
    )


@pytest.mark.parametrize("faulted", (False, True), ids=("clean", "faulted"))
@pytest.mark.parametrize("policy", POLICIES)
def test_lazy_matches_eager_under_congestion(policy, faulted):
    _assert_parity(
        _run(policy, 0, faulted, eager=False, storm=True),
        _run(policy, 0, faulted, eager=True, storm=True),
    )


@pytest.mark.parametrize("policy", POLICIES)
def test_faulted_runs_actually_fire_stale_timers(policy):
    """The parity above is vacuous for the stale-timer path unless lazy
    runs really leave later-moving completions behind; stragglers slow
    CPU jobs mid-flight, which is exactly that."""
    _, _, _, stale = _run(policy, 0, True, eager=False)
    assert stale > 0, "faulted scenario never fired a stale timer"
