"""FIFO policy semantics."""

import pytest

from repro.perfmodel.stages import TrainSetup
from repro.schedulers.base import StartDecision
from repro.schedulers.fifo import FifoScheduler
from repro.workload.job import CpuJob, GpuJob


def _gpu(job_id, gpus=1, cpus=2, nodes=1):
    return GpuJob(
        job_id=job_id,
        tenant_id=1,
        submit_time=0.0,
        model_name="resnet50",
        setup=TrainSetup(nodes, gpus),
        requested_cpus=cpus,
        total_iterations=10,
    )


def _cpu(job_id, cores=2):
    return CpuJob(job_id=job_id, tenant_id=2, submit_time=0.0, cores=cores)


class TestOrdering:
    def test_starts_in_submission_order(self, tiny_cluster):
        scheduler = FifoScheduler()
        scheduler.submit(_gpu("a"), 0.0)
        scheduler.submit(_gpu("b"), 1.0)
        decisions = scheduler.schedule(tiny_cluster, 2.0)
        assert [d.job.job_id for d in decisions] == ["a", "b"]

    def test_all_decisions_are_starts(self, tiny_cluster):
        scheduler = FifoScheduler()
        scheduler.submit(_gpu("a"), 0.0)
        decisions = scheduler.schedule(tiny_cluster, 0.0)
        assert all(isinstance(d, StartDecision) for d in decisions)

    def test_gpu_head_of_line_blocks_gpu_queue(self, tiny_cluster):
        """The first unplaceable GPU job blocks later GPU jobs (no
        backfill — the Sec. III status quo)."""
        scheduler = FifoScheduler()
        scheduler.submit(_gpu("big", gpus=4, nodes=2), 0.0)
        scheduler.submit(_gpu("small"), 1.0)
        tiny_cluster.allocate("blocker", [(0, 1, 1)])  # 2N8G now impossible
        decisions = scheduler.schedule(tiny_cluster, 2.0)
        assert decisions == []

    def test_cpu_jobs_bypass_blocked_gpu_head(self, tiny_cluster):
        scheduler = FifoScheduler()
        scheduler.submit(_gpu("big", gpus=4, nodes=2), 0.0)
        scheduler.submit(_cpu("little"), 1.0)
        tiny_cluster.allocate("blocker", [(0, 1, 1)])
        decisions = scheduler.schedule(tiny_cluster, 2.0)
        assert [d.job.job_id for d in decisions] == ["little"]

    def test_cpu_head_blocks_cpu_queue(self, tiny_cluster):
        scheduler = FifoScheduler()
        tiny_cluster.allocate("hog", [(0, 28, 0), (1, 27, 0)])
        scheduler.submit(_cpu("wide", cores=8), 0.0)
        scheduler.submit(_cpu("narrow", cores=1), 1.0)
        decisions = scheduler.schedule(tiny_cluster, 2.0)
        assert decisions == []

    def test_decisions_are_consistent_within_a_pass(self, tiny_cluster):
        """A pass must not hand the same GPU to two jobs."""
        scheduler = FifoScheduler()
        for index in range(10):
            scheduler.submit(_gpu(f"g{index}"), float(index))
        decisions = scheduler.schedule(tiny_cluster, 10.0)
        assert len(decisions) == 8  # 8 GPUs total
        for decision in decisions:
            tiny_cluster.allocate(
                decision.job.job_id, list(decision.placements)
            )  # raises if inconsistent

    def test_uses_requested_cpus(self, tiny_cluster):
        scheduler = FifoScheduler()
        scheduler.submit(_gpu("a", cpus=7), 0.0)
        decisions = scheduler.schedule(tiny_cluster, 0.0)
        assert decisions[0].placements[0][1] == 7


class TestLifecycle:
    def test_preempted_job_returns_to_head(self, tiny_cluster):
        scheduler = FifoScheduler()
        scheduler.submit(_gpu("b"), 1.0)
        scheduler.job_preempted(_gpu("a"), 2.0, preserve_progress=False)
        assert [j.job_id for j in scheduler.pending_jobs()] == ["a", "b"]

    def test_pending_jobs_counts_both_kinds(self):
        scheduler = FifoScheduler()
        scheduler.submit(_gpu("g"), 0.0)
        scheduler.submit(_cpu("c"), 0.0)
        assert scheduler.queue_depth() == 2

    def test_rejects_unknown_job_type(self):
        scheduler = FifoScheduler()
        with pytest.raises(TypeError):
            scheduler.submit(object(), 0.0)

    def test_job_finished_is_noop(self):
        FifoScheduler().job_finished(_gpu("a"), 0.0)
