"""RunSpec construction, seed resolution, and fingerprints."""

import pickle

import pytest

from repro.core.coda import CodaConfig, CodaScheduler
from repro.experiments.scenarios import small_scenario
from repro.parallel import SCHEDULER_NAMES, RunSpec, build_scheduler
from repro.schedulers.drf import DrfScheduler
from repro.schedulers.fifo import FifoScheduler


class TestBuildScheduler:
    def test_builds_every_named_policy(self):
        assert isinstance(build_scheduler("fifo"), FifoScheduler)
        assert isinstance(build_scheduler("drf"), DrfScheduler)
        assert isinstance(build_scheduler("coda"), CodaScheduler)

    def test_coda_config_applies(self):
        scheduler = build_scheduler(
            "coda", coda_config=CodaConfig(reserved_cores=20)
        )
        assert scheduler.config.reserved_cores == 20

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            build_scheduler("lottery")


class TestRunSpec:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            RunSpec(scenario=small_scenario(), scheduler="lottery")

    def test_non_positive_sample_interval_rejected(self):
        with pytest.raises(ValueError, match="sample interval"):
            RunSpec(scenario=small_scenario(), sample_interval_s=0.0)

    def test_with_seed_overrides_trace_seed_only(self):
        spec = RunSpec(scenario=small_scenario(seed=0)).with_seed(9)
        resolved = spec.resolved_scenario()
        assert resolved.trace_config.seed == 9
        assert resolved.cluster_config == spec.scenario.cluster_config

    def test_no_seed_override_keeps_scenario(self):
        spec = RunSpec(scenario=small_scenario(seed=4))
        assert spec.resolved_scenario() is spec.scenario

    def test_specs_are_picklable(self):
        spec = RunSpec(
            scenario=small_scenario(),
            scheduler="coda",
            coda_config=CodaConfig(reserved_cores=12),
            seed=3,
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_scheduler_names_cover_comparison(self):
        assert SCHEDULER_NAMES == ("fifo", "drf", "coda")


class TestFingerprint:
    def test_seed_override_folds_into_scenario(self):
        base = small_scenario(seed=0)
        explicit = RunSpec(scenario=small_scenario(seed=7))
        overridden = RunSpec(scenario=base, seed=7)
        assert explicit.fingerprint() == overridden.fingerprint()
        assert explicit.canonical_json() == overridden.canonical_json()

    def test_different_policy_different_fingerprint(self):
        scenario = small_scenario()
        fifo = RunSpec(scenario=scenario, scheduler="fifo")
        drf = RunSpec(scenario=scenario, scheduler="drf")
        assert fifo.canonical_json() != drf.canonical_json()

    def test_config_knob_changes_fingerprint(self):
        scenario = small_scenario()
        default = RunSpec(scenario=scenario)
        tuned = RunSpec(
            scenario=scenario, coda_config=CodaConfig(reserved_cores=20)
        )
        assert default.canonical_json() != tuned.canonical_json()

    def test_canonical_json_is_stable(self):
        spec = RunSpec(scenario=small_scenario(), scheduler="drf", seed=2)
        assert spec.canonical_json() == spec.canonical_json()
