"""The content-addressed result cache: hits, invalidation, robustness."""

import json

import pytest

from repro.core.coda import CodaConfig
from repro.experiments.scenarios import small_scenario
from repro.metrics.serialize import run_result_to_dict
from repro.parallel import (
    CACHE_DIR_ENV,
    NO_CACHE_ENV,
    ResultCache,
    RunSpec,
    SimPool,
    default_cache,
)


@pytest.fixture
def spec():
    return RunSpec(
        scenario=small_scenario(duration_days=0.02, nodes=4, seed=1),
        scheduler="coda",
    )


def _dumps(result):
    return json.dumps(run_result_to_dict(result), sort_keys=True)


class TestCacheRoundTrip:
    def test_warm_hit_returns_identical_result(self, tmp_path, spec):
        cache = ResultCache(tmp_path / "cache")
        cold = SimPool(cache=cache).map([spec])[0]
        assert cache.stats.hits == 0
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

        warm_cache = ResultCache(tmp_path / "cache")
        warm = SimPool(cache=warm_cache).map([spec])[0]
        assert warm_cache.stats.hits == 1
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.stores == 0
        assert _dumps(warm) == _dumps(cold)

    def test_entry_count_tracks_stores(self, tmp_path, spec):
        cache = ResultCache(tmp_path / "cache")
        assert cache.entry_count() == 0
        SimPool(cache=cache).map([spec])
        assert cache.entry_count() == 1
        SimPool(cache=cache).map([spec])  # hit: no second entry
        assert cache.entry_count() == 1

    def test_store_is_atomic_no_temp_residue(self, tmp_path, spec):
        cache = ResultCache(tmp_path / "cache")
        SimPool(cache=cache).map([spec])
        leftovers = [
            p for p in (tmp_path / "cache").rglob("*") if p.suffix != ".json"
        ]
        assert [p for p in leftovers if p.is_file()] == []


class TestInvalidation:
    def test_config_change_changes_key(self, tmp_path, spec):
        cache = ResultCache(tmp_path / "cache")
        tuned = RunSpec(
            scenario=spec.scenario,
            scheduler="coda",
            coda_config=CodaConfig(reserved_cores=20),
        )
        assert cache.key_for(spec) != cache.key_for(tuned)

    def test_seed_change_changes_key(self, tmp_path, spec):
        cache = ResultCache(tmp_path / "cache")
        assert cache.key_for(spec) != cache.key_for(spec.with_seed(9))

    def test_package_version_change_changes_key(
        self, tmp_path, spec, monkeypatch
    ):
        import repro

        cache = ResultCache(tmp_path / "cache")
        before = cache.key_for(spec)
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert cache.key_for(spec) != before

    def test_version_change_forces_rerun_not_stale_hit(
        self, tmp_path, spec, monkeypatch
    ):
        import repro

        cache = ResultCache(tmp_path / "cache")
        SimPool(cache=cache).map([spec])
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        SimPool(cache=cache).map([spec])
        assert cache.stats.hits == 0
        assert cache.stats.stores == 2
        assert cache.entry_count() == 2


class TestRobustness:
    def test_corrupted_entry_is_a_miss_and_overwritten(self, tmp_path, spec):
        cache = ResultCache(tmp_path / "cache")
        SimPool(cache=cache).map([spec])
        path = cache.path_for(cache.key_for(spec))
        path.write_text("{ not json", encoding="utf-8")

        fresh_cache = ResultCache(tmp_path / "cache")
        result = SimPool(cache=fresh_cache).map([spec])[0]
        assert fresh_cache.stats.misses == 1
        assert fresh_cache.stats.stores == 1
        # The overwritten entry is readable again.
        assert _dumps(fresh_cache.load(fresh_cache.key_for(spec))) == _dumps(
            result
        )

    def test_stale_schema_entry_is_a_miss(self, tmp_path, spec):
        cache = ResultCache(tmp_path / "cache")
        SimPool(cache=cache).map([spec])
        path = cache.path_for(cache.key_for(spec))
        data = json.loads(path.read_text(encoding="utf-8"))
        data["schema"] = -1
        path.write_text(json.dumps(data), encoding="utf-8")
        assert ResultCache(tmp_path / "cache").load(cache.key_for(spec)) is None


class TestDefaultCache:
    def test_no_cache_env_disables(self, monkeypatch):
        monkeypatch.setenv(NO_CACHE_ENV, "1")
        assert default_cache() is None

    def test_explicit_root_wins_over_kill_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv(NO_CACHE_ENV, "1")
        cache = default_cache(tmp_path / "explicit")
        assert cache is not None
        assert cache.root == tmp_path / "explicit"

    def test_cache_dir_env_relocates(self, tmp_path, monkeypatch):
        monkeypatch.delenv(NO_CACHE_ENV, raising=False)
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        cache = default_cache()
        assert cache is not None
        assert str(cache.root) == str(tmp_path / "elsewhere")


class TestStoreRetry:
    def test_transient_os_error_retried_once(self, tmp_path, spec, monkeypatch):
        import repro.parallel.cache as cache_module

        cache = ResultCache(tmp_path / "cache")
        real_replace = cache_module.os.replace
        blown = []

        def flaky_replace(src, dst):
            if not blown:
                blown.append(True)
                raise FileNotFoundError(src)
            return real_replace(src, dst)

        monkeypatch.setattr(cache_module.os, "replace", flaky_replace)
        result = SimPool(cache=cache).map([spec])[0]
        assert cache.stats.store_retries == 1
        assert cache.stats.store_failures == 0
        assert cache.stats.stores == 1
        assert "store retry(ies)" in cache.stats.render()
        # The retried entry is intact and serves a warm hit.
        warm = ResultCache(tmp_path / "cache")
        assert _dumps(warm.load(warm.key_for(spec))) == _dumps(result)

    def test_persistent_os_error_is_swallowed(self, tmp_path, spec, monkeypatch):
        import repro.parallel.cache as cache_module

        cache = ResultCache(tmp_path / "cache")

        def broken_replace(src, dst):
            raise PermissionError(dst)

        monkeypatch.setattr(cache_module.os, "replace", broken_replace)
        result = SimPool(cache=cache).map([spec])[0]  # must not raise
        assert result is not None
        assert cache.stats.store_retries == 1
        assert cache.stats.store_failures == 1
        assert cache.stats.stores == 0
        assert "1 store failure(s)" in cache.stats.render()
