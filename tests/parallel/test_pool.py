"""SimPool execution paths and executor injection into the drivers."""

import json

import pytest

from repro.experiments.scenarios import (
    run_comparison,
    run_mtbf_sweep,
    small_scenario,
)
from repro.metrics.serialize import run_result_to_dict
from repro.parallel import ResultCache, RunSpec, SimPool, serial_map
from repro.schedulers.fifo import FifoScheduler


def _dumps(result):
    return json.dumps(run_result_to_dict(result), sort_keys=True)


@pytest.fixture
def scenario():
    return small_scenario(duration_days=0.02, nodes=4, seed=1)


class TestSimPool:
    def test_rejects_non_positive_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            SimPool(jobs=0)

    def test_jobs1_matches_serial_map(self, scenario):
        specs = [
            RunSpec(scenario=scenario, scheduler=name)
            for name in ("fifo", "coda")
        ]
        serial = serial_map(specs)
        pooled = SimPool(jobs=1).map(specs)
        for left, right in zip(serial, pooled):
            assert _dumps(left) == _dumps(right)

    def test_results_align_with_spec_order(self, scenario):
        specs = [
            RunSpec(scenario=scenario, scheduler=name)
            for name in ("coda", "fifo", "drf")
        ]
        results = SimPool(jobs=1).map(specs)
        assert [r.scheduler_name for r in results] == ["coda", "fifo", "drf"]

    def test_spawn_parallel_is_byte_identical_to_serial(self, scenario):
        specs = [
            RunSpec(scenario=scenario, scheduler=name)
            for name in ("fifo", "drf", "coda")
        ]
        serial = serial_map(specs)
        parallel = SimPool(jobs=2).map(specs)
        assert [r.scheduler_name for r in parallel] == ["fifo", "drf", "coda"]
        for left, right in zip(serial, parallel):
            assert _dumps(left) == _dumps(right)

    def test_mixed_hit_miss_batch_keeps_order(self, tmp_path, scenario):
        cache = ResultCache(tmp_path / "cache")
        first = RunSpec(scenario=scenario, scheduler="fifo")
        second = RunSpec(scenario=scenario, scheduler="drf")
        SimPool(cache=cache).map([first])  # prime only the first
        results = SimPool(cache=cache).map([first, second])
        assert [r.scheduler_name for r in results] == ["fifo", "drf"]
        assert cache.stats.hits == 1
        assert cache.stats.stores == 2


class TestExecutorInjection:
    def test_run_comparison_serial_equals_pooled(self, scenario):
        serial = run_comparison(scenario)
        pooled = run_comparison(scenario, executor=SimPool(jobs=1).map)
        assert set(serial) == set(pooled) == {"fifo", "drf", "coda"}
        for name in serial:
            assert _dumps(serial[name]) == _dumps(pooled[name])

    def test_run_comparison_executor_sees_all_specs(self, scenario):
        seen = []

        def spy(specs):
            seen.extend(specs)
            return serial_map(specs)

        run_comparison(scenario, executor=spy)
        assert [spec.scheduler for spec in seen] == ["fifo", "drf", "coda"]

    def test_run_mtbf_sweep_through_executor(self, scenario):
        hours = (0.0, 1.0)
        serial = run_mtbf_sweep(scenario, hours, scheduler="fifo")
        pooled = run_mtbf_sweep(
            scenario, hours, scheduler="fifo", executor=SimPool(jobs=1).map
        )
        assert set(serial) == set(pooled) == set(hours)
        for point in hours:
            assert _dumps(serial[point]) == _dumps(pooled[point])

    def test_scheduler_factory_conflicts_with_executor(self, scenario):
        with pytest.raises(ValueError, match="scheduler_factory"):
            run_mtbf_sweep(
                scenario,
                (1.0,),
                scheduler_factory=FifoScheduler,
                executor=serial_map,
            )

    def test_scheduler_factory_path_still_works(self, scenario):
        results = run_mtbf_sweep(
            scenario, (0.0,), scheduler_factory=FifoScheduler
        )
        assert results[0.0].scheduler_name == "fifo"


class TestClampJobs:
    """clamp_jobs is the one home of the single-CPU degradation rule;
    default_jobs, the sweep service's effective_jobs, and compare
    --jobs all route through it."""

    def test_single_cpu_clamps_explicit_request(self, monkeypatch):
        import repro.parallel.pool as pool_module

        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 1)
        monkeypatch.delenv("REPRO_SWEEP_FORCE_SPAWN", raising=False)
        from repro.parallel import clamp_jobs

        assert clamp_jobs(4) == 1
        assert clamp_jobs(1) == 1

    def test_force_spawn_overrides_single_cpu(self, monkeypatch):
        import repro.parallel.pool as pool_module

        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 1)
        monkeypatch.setenv("REPRO_SWEEP_FORCE_SPAWN", "1")
        from repro.parallel import clamp_jobs

        assert clamp_jobs(4) == 4

    def test_multicore_passthrough(self, monkeypatch):
        import repro.parallel.pool as pool_module

        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 8)
        monkeypatch.delenv("REPRO_SWEEP_FORCE_SPAWN", raising=False)
        from repro.parallel import clamp_jobs

        assert clamp_jobs(4) == 4

    def test_sweep_effective_jobs_is_same_rule(self, monkeypatch):
        import repro.parallel.pool as pool_module

        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 1)
        monkeypatch.delenv("REPRO_SWEEP_FORCE_SPAWN", raising=False)
        from repro.parallel import clamp_jobs
        from repro.sweep import effective_jobs

        assert effective_jobs(6) == clamp_jobs(6) == 1
        monkeypatch.setenv("REPRO_SWEEP_FORCE_SPAWN", "1")
        assert effective_jobs(6) == clamp_jobs(6) == 6


class TestDefaultJobs:
    def test_single_cpu_clamps_env_request(self, monkeypatch):
        import repro.parallel.pool as pool_module

        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 1)
        monkeypatch.setenv("REPRO_JOBS", "8")
        monkeypatch.delenv("REPRO_SWEEP_FORCE_SPAWN", raising=False)
        from repro.parallel import default_jobs

        assert default_jobs() == 1

    def test_single_cpu_force_spawn_honors_env_request(self, monkeypatch):
        import repro.parallel.pool as pool_module

        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 1)
        monkeypatch.setenv("REPRO_JOBS", "8")
        monkeypatch.setenv("REPRO_SWEEP_FORCE_SPAWN", "1")
        from repro.parallel import default_jobs

        assert default_jobs() == 8

    def test_multicore_honors_env_request(self, monkeypatch):
        import repro.parallel.pool as pool_module

        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 4)
        monkeypatch.setenv("REPRO_JOBS", "3")
        from repro.parallel import default_jobs

        assert default_jobs() == 3
