"""Shared fixtures.

The suite runs with the result cache disabled (``REPRO_NO_CACHE``) so no
test reads another's — or a previous working-tree run's — cached results;
cache-specific tests opt back in with explicit ``ResultCache`` roots
under tmp_path.
"""

from __future__ import annotations

import os

import pytest

os.environ.setdefault("REPRO_NO_CACHE", "1")

from repro.cluster.cluster import Cluster  # noqa: E402
from repro.config import ClusterConfig, NodeConfig, small_cluster  # noqa: E402
from repro.sim.engine import Engine  # noqa: E402


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def tiny_cluster() -> Cluster:
    """Two 4-GPU nodes, 28 cores each."""
    return Cluster(small_cluster(nodes=2, gpus_per_node=4))


@pytest.fixture
def mixed_cluster() -> Cluster:
    """Three 4-GPU nodes plus one 8-GPU node."""
    return Cluster(
        ClusterConfig(
            node_groups=(
                (3, NodeConfig(gpus=4)),
                (1, NodeConfig(gpus=8)),
            )
        )
    )
