"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NodeConfig, small_cluster
from repro.sim.engine import Engine


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def tiny_cluster() -> Cluster:
    """Two 4-GPU nodes, 28 cores each."""
    return Cluster(small_cluster(nodes=2, gpus_per_node=4))


@pytest.fixture
def mixed_cluster() -> Cluster:
    """Three 4-GPU nodes plus one 8-GPU node."""
    return Cluster(
        ClusterConfig(
            node_groups=(
                (3, NodeConfig(gpus=4)),
                (1, NodeConfig(gpus=8)),
            )
        )
    )
