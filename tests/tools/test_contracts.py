"""Contracts-manifest loader tests, including the 3.10 fallback parser
(which must agree with tomllib on the subset contracts.toml uses)."""

from pathlib import Path

import pytest

from tools.codalint.contracts import (
    CacheContract,
    ContractError,
    Contracts,
    contracts_from_mapping,
    find_contracts_file,
    load_contracts,
    parse_minimal_toml,
)

REPO_MANIFEST = Path(__file__).resolve().parents[2] / "contracts.toml"


class TestFallbackParser:
    def test_matches_tomllib_on_repo_manifest(self):
        tomllib = pytest.importorskip("tomllib")
        text = REPO_MANIFEST.read_text(encoding="utf-8")
        assert parse_minimal_toml(text) == tomllib.loads(text)

    def test_tables_arrays_and_scalars(self):
        data = parse_minimal_toml(
            '[top]\nname = "x" # comment\nflag = true\nn = 3\n'
            '[[row]]\nattrs = ["a", "b,c", "d # not a comment"]\n'
            '[[row]]\nattrs = []\n'
        )
        assert data["top"] == {"name": "x", "flag": True, "n": 3}
        assert data["row"][0]["attrs"] == ["a", "b,c", "d # not a comment"]
        assert data["row"][1]["attrs"] == []

    def test_rejects_unsupported_value(self):
        with pytest.raises(ContractError, match="unsupported value"):
            parse_minimal_toml("[t]\nx = 1979-05-27\n")

    def test_rejects_malformed_header(self):
        with pytest.raises(ContractError, match="malformed header"):
            parse_minimal_toml("[broken\n")


class TestLoad:
    def test_repo_manifest_loads(self):
        contracts = load_contracts(REPO_MANIFEST)
        assert "repro.cluster.node:GenerationCounter.bump" in contracts.hooks
        tracked = contracts.tracked_attrs()
        assert tracked[("Node", "_used_cpus")].blame == "writer"
        assert tracked[("Gpu", "owner")].blame == "caller"
        assert contracts.cache_declared("Cluster", "free_snapshot_cache")
        assert contracts.cache_function_declared(
            "repro.experiments.figures:run_cached_comparison"
        )
        assert ("Node", "_shares") in contracts.readonly_attrs()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ContractError, match="cannot read"):
            load_contracts(tmp_path / "nope.toml")

    def test_cache_entry_requires_invalidation(self):
        with pytest.raises(ContractError, match="invalidation"):
            contracts_from_mapping(
                {"cache": [{"owner": "X", "attr": "_cache"}]}, "t"
            )

    def test_tracked_rejects_unknown_blame(self):
        with pytest.raises(ContractError, match="blame"):
            contracts_from_mapping(
                {"tracked": [{"class": "X", "attrs": ["a"], "blame": "y"}]},
                "t",
            )

    def test_find_walks_up(self, tmp_path):
        (tmp_path / "contracts.toml").write_text("[generation]\nhooks = []\n")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert find_contracts_file(nested) == tmp_path / "contracts.toml"

    def test_bare_function_name_matches_suffix(self):
        contracts = Contracts(
            caches=(
                # function without module prefix matches any module
                CacheContract(
                    function="run_cached_comparison", invalidation="args"
                ),
            )
        )
        assert contracts.cache_function_declared(
            "repro.experiments.figures:run_cached_comparison"
        )
