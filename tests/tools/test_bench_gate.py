"""The benchmark regression gate's retry-on-noise behaviour.

The quick scenario variants finish in tens of milliseconds, so a single
host-scheduling blip can push one reading below the tolerance floor.
``check_regressions`` therefore re-measures a below-floor scenario (when
given a ``rerun`` hook) and only reports a regression when every attempt
lands below the floor.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_speed import check_regressions  # noqa: E402

COMMITTED = {"current": {"quick": {"s": {"events_per_sec": 100.0}}}}


def test_noise_blip_clears_on_retry():
    calls = []

    def rerun(name):
        calls.append(name)
        return {"events_per_sec": 95.0}

    regressed = check_regressions(
        {"s": {"events_per_sec": 60.0}},
        COMMITTED,
        mode="quick",
        tolerance=0.2,
        rerun=rerun,
    )
    assert regressed == 0
    assert calls == ["s"]


def test_real_regression_fails_every_attempt():
    calls = []

    def rerun(name):
        calls.append(name)
        return {"events_per_sec": 60.0}

    regressed = check_regressions(
        {"s": {"events_per_sec": 60.0}},
        COMMITTED,
        mode="quick",
        tolerance=0.2,
        rerun=rerun,
        retries=2,
    )
    assert regressed == 1
    assert calls == ["s", "s"]


def test_single_shot_without_rerun_hook():
    regressed = check_regressions(
        {"s": {"events_per_sec": 60.0}},
        COMMITTED,
        mode="quick",
        tolerance=0.2,
    )
    assert regressed == 1


def test_missing_committed_entry_is_skipped():
    regressed = check_regressions(
        {"new_scenario": {"events_per_sec": 1.0}},
        COMMITTED,
        mode="quick",
        tolerance=0.2,
    )
    assert regressed == 0
