"""Effect-extraction tests: write forms (subscript stores, augmented
assignment, del, collection mutators), thread-target edges, and the
transitive fixpoint."""

import textwrap

from tools.codalint.callgraph import build_program
from tools.codalint.effects import EffectAnalysis


def _analyze(tmp_path, source):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "m.py").write_text(textwrap.dedent(source))
    program = build_program([pkg])
    return program, EffectAnalysis(program).run()


def _fx(analysis, suffix):
    matches = [f for f in analysis.effects if f.endswith(suffix)]
    assert len(matches) == 1, f"{suffix}: {matches}"
    return analysis.effects[matches[0]]


class TestWriteForms:
    SOURCE = """
    from typing import Dict

    class Store:
        def __init__(self):
            self.table: Dict[str, int] = {}
            self.count = 0

        def put(self, key, value):
            self.table[key] = value
            self.count += 1

        def drop(self, key):
            self.table.pop(key, None)

        def clear(self):
            del self.count
    """

    def test_subscript_store_writes_the_attribute(self, tmp_path):
        _, analysis = _analyze(tmp_path, self.SOURCE)
        put = _fx(analysis, ":Store.put")
        assert ("Store", "table") in put.writes

    def test_augassign_is_read_and_write(self, tmp_path):
        _, analysis = _analyze(tmp_path, self.SOURCE)
        put = _fx(analysis, ":Store.put")
        assert ("Store", "count") in put.writes
        assert ("Store", "count") in put.reads

    def test_collection_mutator_counts_as_write(self, tmp_path):
        _, analysis = _analyze(tmp_path, self.SOURCE)
        drop = _fx(analysis, ":Store.drop")
        assert ("Store", "table") in drop.writes

    def test_del_counts_as_write(self, tmp_path):
        _, analysis = _analyze(tmp_path, self.SOURCE)
        clear = _fx(analysis, ":Store.clear")
        assert ("Store", "count") in clear.writes


class TestMutatorVsMethod:
    def test_named_method_wins_over_mutator_heuristic(self, tmp_path):
        # `self.mba.release()` must resolve to MbaLike.release (a call
        # edge), not be misread as a list.release() mutation of `mba`.
        _, analysis = _analyze(
            tmp_path,
            """
            class MbaLike:
                def __init__(self):
                    self.level = 0

                def release(self):
                    self.level = 0

            class Owner:
                def __init__(self):
                    self.mba = MbaLike()

                def tear_down(self):
                    self.mba.release()
            """,
        )
        tear_down = _fx(analysis, ":Owner.tear_down")
        assert ("Owner", "mba") not in tear_down.writes
        assert any(f.endswith(":MbaLike.release") for f in tear_down.calls)
        assert ("MbaLike", "level") in tear_down.transitive_writes


class TestThreadEdges:
    SOURCE = """
    import threading
    import multiprocessing

    class Flag:
        def __init__(self):
            self.fired = False

    def worker(flag: "Flag"):
        flag.fired = True

    def spawn_thread(flag: "Flag"):
        thread = threading.Thread(target=worker, args=(flag,), daemon=True)
        thread.start()

    def spawn_process(flag: "Flag"):
        proc = multiprocessing.Process(target=worker, args=(flag,))
        proc.start()
    """

    def test_thread_target_is_a_thread_edge_not_a_call(self, tmp_path):
        _, analysis = _analyze(tmp_path, self.SOURCE)
        spawner = _fx(analysis, ":spawn_thread")
        assert any(f.endswith(":worker") for f in spawner.thread_targets)
        assert not any(f.endswith(":worker") for f in spawner.calls)
        # Thread effects stay out of the spawner's transitive sets.
        assert ("Flag", "fired") not in spawner.transitive_writes

    def test_process_spawn_is_not_a_thread_edge(self, tmp_path):
        # A child process shares no memory: EF004 must not treat
        # multiprocessing targets as shared-state threads.
        _, analysis = _analyze(tmp_path, self.SOURCE)
        spawner = _fx(analysis, ":spawn_process")
        assert not spawner.thread_targets


class TestFixpoint:
    def test_effects_propagate_through_call_chains(self, tmp_path):
        _, analysis = _analyze(
            tmp_path,
            """
            class State:
                def __init__(self):
                    self.depth = 0

            def low(state: "State"):
                state.depth = 3

            def mid(state: "State"):
                low(state)

            def high(state: "State"):
                mid(state)
            """,
        )
        assert ("State", "depth") in _fx(analysis, ":high").transitive_writes
        assert ("State", "depth") not in _fx(analysis, ":high").writes

    def test_recursion_terminates_and_merges(self, tmp_path):
        _, analysis = _analyze(
            tmp_path,
            """
            class Acc:
                def __init__(self):
                    self.total = 0

            def even(acc: "Acc", n):
                if n > 0:
                    odd(acc, n - 1)

            def odd(acc: "Acc", n):
                acc.total += 1
                even(acc, n - 1)
            """,
        )
        assert ("Acc", "total") in _fx(analysis, ":even").transitive_writes
        assert ("Acc", "total") in _fx(analysis, ":odd").transitive_writes


class TestClosures:
    def test_nested_function_sees_enclosing_annotations(self, tmp_path):
        _, analysis = _analyze(
            tmp_path,
            """
            class Conn:
                def __init__(self):
                    self.sent = 0

            def outer(conn: "Conn"):
                def inner():
                    conn.sent += 1
                inner()
            """,
        )
        inner = _fx(analysis, ":outer.<locals>.inner")
        assert ("Conn", "sent") in inner.writes
        outer = _fx(analysis, ":outer")
        assert ("Conn", "sent") in outer.transitive_writes
