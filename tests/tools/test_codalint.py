"""codalint: every rule must fire on a minimal fixture and stay quiet on
the idiomatic alternative, and the suppression/CLI plumbing must behave.

Fixtures are deliberately tiny — one construct per assertion — so a rule
regression points at exactly one behaviour.
"""

import json
from pathlib import Path

import pytest

from tools.codalint import check_file, check_paths, check_source
from tools.codalint.cli import main
from tools.codalint.rules import ALL_RULES, RULES_BY_CODE


def codes(source: str) -> list:
    return [v.code for v in check_source(source)]


class TestRuleCatalogue:
    def test_all_rules_have_codes_and_prose(self):
        assert [r.code for r in ALL_RULES] == [
            "CL001", "CL002", "CL003", "CL004", "CL005", "CL006", "CL007",
        ]
        for rule in ALL_RULES:
            assert rule.summary and rule.rationale
            assert RULES_BY_CODE[rule.code] is rule


class TestCL001WallClock:
    def test_time_time(self):
        assert codes("import time\nnow = time.time()\n") == ["CL001"]

    def test_time_monotonic_via_alias(self):
        assert codes("import time as t\nnow = t.monotonic()\n") == ["CL001"]

    def test_from_import(self):
        assert codes(
            "from time import perf_counter\nnow = perf_counter()\n"
        ) == ["CL001"]

    def test_datetime_now(self):
        assert codes(
            "from datetime import datetime\nstamp = datetime.now()\n"
        ) == ["CL001"]

    def test_engine_clock_is_fine(self):
        assert codes("now = engine.now\nlater = clock.advance(5.0)\n") == []

    def test_time_sleep_is_not_a_clock_read(self):
        assert codes("import time\ntime.sleep(1)\n") == []


class TestCL002UnseededRandom:
    def test_module_level_draw(self):
        assert codes("import random\nx = random.random()\n") == ["CL002"]

    def test_module_level_choice(self):
        assert codes("import random\nx = random.choice([1, 2])\n") == ["CL002"]

    def test_unseeded_random_instance(self):
        assert codes("import random\nrng = random.Random()\n") == ["CL002"]

    def test_seeded_random_instance_is_fine(self):
        assert codes("import random\nrng = random.Random(42)\n") == []

    def test_stream_draws_are_fine(self):
        assert codes("rng = registry.stream('arrivals')\nx = rng.random()\n") == []


class TestCL003SetIteration:
    def test_for_over_set_literal(self):
        assert codes("for x in {1, 2, 3}:\n    pass\n") == ["CL003"]

    def test_for_over_annotated_set_symbol(self):
        source = (
            "from typing import Set\n"
            "node_ids: Set[int] = set()\n"
            "for node_id in node_ids:\n"
            "    pass\n"
        )
        assert codes(source) == ["CL003"]

    def test_for_over_set_typed_attribute(self):
        source = (
            "class Tracker:\n"
            "    def drain(self):\n"
            "        self._seen = set()\n"
            "        for item in self._seen:\n"
            "            pass\n"
        )
        assert codes(source) == ["CL003"]

    def test_comprehension_over_set(self):
        assert codes("ids = set()\nout = [x for x in ids]\n") == ["CL003"]

    def test_list_freezes_set_order(self):
        assert codes("ids = set()\nfrozen = list(ids)\n") == ["CL003"]

    def test_join_over_set(self):
        assert codes("names = set()\nlabel = ','.join(names)\n") == ["CL003"]

    def test_set_union_still_a_set(self):
        assert codes("a = set()\nfor x in a | {1}:\n    pass\n") == ["CL003"]

    def test_sorted_set_is_fine(self):
        assert codes("ids = set()\nfor x in sorted(ids):\n    pass\n") == []

    def test_order_insensitive_consumers_are_fine(self):
        source = (
            "ids = set()\n"
            "n = len(ids)\n"
            "total = sum(x for x in ids)\n"
            "top = max(ids)\n"
        )
        assert codes(source) == []

    def test_dict_iteration_is_fine(self):
        # dicts are insertion-ordered; only sets are nondeterministic.
        assert codes("d = {}\nfor k in d:\n    pass\n") == []


class TestCL004BroadExcept:
    def test_bare_except(self):
        assert codes("try:\n    pass\nexcept:\n    pass\n") == ["CL004"]

    def test_except_exception(self):
        assert codes("try:\n    pass\nexcept Exception:\n    pass\n") == [
            "CL004"
        ]

    def test_exception_inside_tuple(self):
        source = "try:\n    pass\nexcept (ValueError, Exception):\n    pass\n"
        assert codes(source) == ["CL004"]

    def test_narrow_except_is_fine(self):
        source = "try:\n    pass\nexcept (ValueError, KeyError):\n    pass\n"
        assert codes(source) == []


class TestCL005MutableDefault:
    def test_list_default(self):
        assert codes("def f(xs=[]):\n    pass\n") == ["CL005"]

    def test_dict_factory_default(self):
        assert codes("def f(xs=dict()):\n    pass\n") == ["CL005"]

    def test_kwonly_default(self):
        assert codes("def f(*, xs={}):\n    pass\n") == ["CL005"]

    def test_lambda_default(self):
        assert codes("f = lambda xs=[]: xs\n") == ["CL005"]

    def test_none_default_is_fine(self):
        assert codes("def f(xs=None):\n    pass\n") == []

    def test_frozen_default_is_fine(self):
        assert codes("def f(xs=()):\n    pass\n") == []


class TestCL006FloatIntoIntCounter:
    def test_float_literal_accumulation(self):
        source = "used: int = 0\nused += 0.5\n"
        assert codes(source) == ["CL006"]

    def test_division_accumulation(self):
        source = "used: int = 0\nused += cores / 2\n"
        assert codes(source) == ["CL006"]

    def test_attribute_counter(self):
        source = (
            "class Node:\n"
            "    def __init__(self):\n"
            "        self.used: int = 0\n"
            "    def grab(self, n):\n"
            "        self.used += float(n)\n"
        )
        assert codes(source) == ["CL006"]

    def test_int_accumulation_is_fine(self):
        assert codes("used: int = 0\nused += 4\nused -= 2\n") == []

    def test_float_counter_is_fine(self):
        assert codes("work: float = 0.0\nwork += 0.5\n") == []


class TestCL007UnboundedJoin:
    def test_process_join_without_timeout(self):
        source = (
            "import multiprocessing\n"
            "p = multiprocessing.Process(target=work)\n"
            "p.start()\n"
            "p.join()\n"
        )
        assert codes(source) == ["CL007"]

    def test_context_process_join(self):
        source = (
            "import multiprocessing\n"
            'ctx = multiprocessing.get_context("spawn")\n'
            "worker = ctx.Process(target=work)\n"
            "worker.join()\n"
        )
        assert codes(source) == ["CL007"]

    def test_pool_join(self):
        source = (
            "from multiprocessing import Pool\n"
            "pool = Pool(4)\n"
            "pool.join()\n"
        )
        assert codes(source) == ["CL007"]

    def test_join_with_timeout_kw_is_fine(self):
        source = (
            "import multiprocessing\n"
            "p = multiprocessing.Process(target=work)\n"
            "p.join(timeout=5.0)\n"
        )
        assert codes(source) == []

    def test_join_with_positional_timeout_is_fine(self):
        source = (
            "import multiprocessing\n"
            "p = multiprocessing.Process(target=work)\n"
            "p.join(5.0)\n"
        )
        assert codes(source) == []

    def test_string_and_thread_joins_are_ignored(self):
        source = (
            "import threading\n"
            'text = ", ".join(["a", "b"])\n'
            "t = threading.Thread(target=work)\n"
            "t.join()\n"
        )
        assert codes(source) == []


class TestCL000SyntaxError:
    def test_unparsable_source(self):
        violations = check_source("def broken(:\n")
        assert [v.code for v in violations] == ["CL000"]
        assert "syntax error" in violations[0].message


class TestSuppressions:
    def test_line_disable(self):
        source = "import time\nnow = time.time()  # codalint: disable=CL001\n"
        assert codes(source) == []

    def test_line_disable_only_that_line(self):
        source = (
            "import time\n"
            "a = time.time()  # codalint: disable=CL001\n"
            "b = time.time()\n"
        )
        assert codes(source) == ["CL001"]

    def test_line_disable_all(self):
        source = "import random\nx = random.random()  # codalint: disable=all\n"
        assert codes(source) == []

    def test_line_disable_other_code_keeps_violation(self):
        source = "import time\nnow = time.time()  # codalint: disable=CL003\n"
        assert codes(source) == ["CL001"]

    def test_file_disable(self):
        source = (
            "# codalint: disable-file=CL003\n"
            "ids = set()\n"
            "for x in ids:\n"
            "    pass\n"
            "import time\n"
            "now = time.time()\n"
        )
        assert codes(source) == ["CL001"]


class TestCheckPaths:
    def test_directory_walk_and_filters(self, tmp_path: Path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text(
            "import time\nnow = time.time()\n"
        )
        (tmp_path / "pkg" / "b.py").write_text(
            "ids = set()\nfor x in ids:\n    pass\n"
        )
        all_codes = sorted(v.code for v in check_paths([tmp_path]))
        assert all_codes == ["CL001", "CL003"]
        only = check_paths([tmp_path], select=["CL001"])
        assert [v.code for v in only] == ["CL001"]
        rest = check_paths([tmp_path], ignore=["CL001"])
        assert [v.code for v in rest] == ["CL003"]

    def test_unknown_code_raises(self, tmp_path: Path):
        with pytest.raises(ValueError):
            check_paths([tmp_path], select=["CL999"])

    def test_syntax_error_bypasses_filters(self, tmp_path: Path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        violations = check_paths([tmp_path], select=["CL001"])
        assert [v.code for v in violations] == ["CL000"]

    def test_check_file(self, tmp_path: Path):
        target = tmp_path / "bad.py"
        target.write_text("import random\nx = random.random()\n")
        violations = check_file(target)
        assert [v.code for v in violations] == ["CL002"]
        assert violations[0].path == str(target)


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path: Path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0

    def test_violations_exit_one_text(self, tmp_path: Path, capsys):
        (tmp_path / "bad.py").write_text("import time\nnow = time.time()\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "CL001" in out and "1 violation(s)" in out

    def test_json_output(self, tmp_path: Path, capsys):
        (tmp_path / "bad.py").write_text("import time\nnow = time.time()\n")
        assert main(["--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["violations"][0]["code"] == "CL001"
        assert payload["violations"][0]["line"] == 2

    def test_missing_path_exits_two(self, tmp_path: Path):
        assert main([str(tmp_path / "nope")]) == 2

    def test_bad_code_exits_two(self, tmp_path: Path):
        assert main(["--select", "CL999", str(tmp_path)]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.code in out


class TestRepoIsClean:
    def test_src_passes_codalint(self):
        repo_root = Path(__file__).resolve().parents[2]
        assert check_paths([repo_root / "src"]) == []

    def test_tools_pass_codalint(self):
        repo_root = Path(__file__).resolve().parents[2]
        assert check_paths([repo_root / "tools"]) == []
