"""EF001–EF004 rule tests on small fixture packages."""

import textwrap

from tools.codalint.contracts import (
    CacheContract,
    Contracts,
    ReadonlyState,
    SharedState,
    TrackedState,
)
from tools.codalint.analysis_rules import analyze_paths


def _write_pkg(tmp_path, files):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for name, source in files.items():
        (pkg / name).write_text(textwrap.dedent(source))
    return pkg


GENERATION_FIXTURE = """
class Generation:
    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1

class Node:
    def __init__(self):
        self.used = 0
        self.generation = Generation()

    def allocate(self, n):
        self.used += n
        self.generation.bump()

    def leak(self, n):  # deliberately missing bump()
        self.used += n
"""


def _contracts(**overrides):
    base = dict(
        hooks=("pkg.m:Generation.bump",),
        tracked=(TrackedState("Node", ("used",), "writer"),),
    )
    base.update(overrides)
    return Contracts(**base)


class TestEF001:
    def test_missing_bump_is_caught_exactly_once(self, tmp_path):
        pkg = _write_pkg(tmp_path, {"m.py": GENERATION_FIXTURE})
        violations, _ = analyze_paths([pkg], _contracts())
        assert [v.code for v in violations] == ["EF001"]
        assert violations[0].symbol.endswith(":Node.leak")
        assert "Node.used" in violations[0].message

    def test_constructor_is_exempt(self, tmp_path):
        # Node.__init__ writes `used` without bumping: building the
        # object that owns the counter cannot invalidate stale readers.
        pkg = _write_pkg(tmp_path, {"m.py": GENERATION_FIXTURE})
        violations, _ = analyze_paths([pkg], _contracts())
        assert not any(
            v.symbol.endswith("__init__") for v in violations
        )

    def test_caller_blame_lands_on_the_caller(self, tmp_path):
        pkg = _write_pkg(
            tmp_path,
            {
                "m.py": GENERATION_FIXTURE
                + textwrap.dedent(
                    """
                    class Gpu:
                        def __init__(self):
                            self.owner = None

                        def assign(self, job):
                            self.owner = job

                    def good(gpu: "Gpu", node: "Node", job):
                        gpu.assign(job)
                        node.generation.bump()

                    def bad(gpu: "Gpu", job):
                        gpu.assign(job)
                    """
                )
            },
        )
        contracts = _contracts(
            tracked=(
                TrackedState("Node", ("used",), "writer"),
                TrackedState("Gpu", ("owner",), "caller"),
            )
        )
        violations, _ = analyze_paths([pkg], contracts)
        symbols = {v.symbol.split(":")[-1] for v in violations}
        assert "bad" in symbols
        assert "good" not in symbols
        assert "Gpu.assign" not in symbols  # the class itself is exempt

    def test_root_cause_only_blames_the_callee(self, tmp_path):
        pkg = _write_pkg(
            tmp_path,
            {
                "m.py": GENERATION_FIXTURE
                + textwrap.dedent(
                    """
                    class Cluster:
                        def __init__(self):
                            self.allocations = {}

                    def orchestrate(cluster: "Cluster", node: "Node", job):
                        cluster.allocations[job] = 1
                        node.leak(1)
                    """
                )
            },
        )
        contracts = _contracts(
            tracked=(
                TrackedState("Node", ("used",), "writer"),
                TrackedState("Cluster", ("allocations",), "writer"),
            )
        )
        violations, _ = analyze_paths([pkg], contracts)
        # orchestrate's missing invalidation is entirely explained by
        # Node.leak; only the root cause is reported.
        symbols = {v.symbol.split(":")[-1] for v in violations}
        assert symbols == {"Node.leak"}

    def test_suppression_comment_is_honored(self, tmp_path):
        source = GENERATION_FIXTURE.replace(
            "    def leak(self, n):  # deliberately missing bump()",
            "    def leak(self, n):  # codalint: disable=EF001",
        )
        pkg = _write_pkg(tmp_path, {"m.py": source})
        violations, _ = analyze_paths([pkg], _contracts())
        assert violations == []

    def test_unresolvable_hook_is_reported(self, tmp_path):
        pkg = _write_pkg(tmp_path, {"m.py": GENERATION_FIXTURE})
        contracts = _contracts(hooks=("pkg.m:NoSuch.hook",))
        violations, _ = analyze_paths([pkg], contracts)
        assert any("not found" in v.message for v in violations)


class TestEF002:
    FIXTURE = """
    from functools import lru_cache

    class Table:
        def __init__(self):
            self._row_cache = {}

        def lookup(self, key):
            if key not in self._row_cache:
                self._row_cache[key] = key * 2
            return self._row_cache[key]

    @lru_cache(maxsize=8)
    def expensive(n):
        return n ** 2
    """

    def test_undeclared_caches_fail(self, tmp_path):
        pkg = _write_pkg(tmp_path, {"m.py": self.FIXTURE})
        violations, _ = analyze_paths([pkg], Contracts())
        found = {v.message.split(" has ")[0] for v in violations}
        assert any("Table._row_cache" in f for f in found)
        assert any("expensive" in f for f in found)

    def test_declared_caches_pass(self, tmp_path):
        pkg = _write_pkg(tmp_path, {"m.py": self.FIXTURE})
        contracts = Contracts(
            caches=(
                CacheContract(
                    owner="Table", attr="_row_cache",
                    invalidation="content-keyed",
                ),
                CacheContract(
                    function="pkg.m:expensive", invalidation="arg-keyed"
                ),
            )
        )
        violations, _ = analyze_paths([pkg], contracts)
        assert violations == []


class TestEF003:
    FIXTURE = """
    class Cluster:
        def __init__(self):
            self.used = 0

    class Auditor:
        def __init__(self, cluster: "Cluster"):
            self.cluster = cluster
            self.checks = 0

        def on_event(self, event):
            self.checks += 1
            self._verify()

        def _verify(self):
            self.cluster.used = 0  # observer mutating sim state
    """

    def test_observer_write_to_readonly_state_fails(self, tmp_path):
        pkg = _write_pkg(tmp_path, {"m.py": self.FIXTURE})
        contracts = Contracts(
            observer_roots=("pkg.m:Auditor.on_event",),
            readonly=(ReadonlyState("Cluster", ("used",)),),
        )
        violations, _ = analyze_paths([pkg], contracts)
        assert [v.code for v in violations] == ["EF003"]
        assert violations[0].symbol.endswith(":Auditor._verify")

    def test_observer_own_state_is_fine(self, tmp_path):
        source = self.FIXTURE.replace(
            "self.cluster.used = 0  # observer mutating sim state", "pass"
        )
        pkg = _write_pkg(tmp_path, {"m.py": source})
        contracts = Contracts(
            observer_roots=("pkg.m:Auditor.on_event",),
            readonly=(ReadonlyState("Cluster", ("used",)),),
        )
        violations, _ = analyze_paths([pkg], contracts)
        assert violations == []


class TestEF004:
    FIXTURE = """
    import threading

    class Shared:
        def __init__(self):
            self.beats = 0

    def heartbeat(shared: "Shared"):
        shared.beats += 1

    def supervise(shared: "Shared"):
        thread = threading.Thread(target=heartbeat, args=(shared,))
        thread.start()

    def report(shared: "Shared"):
        return shared.beats
    """

    def test_undeclared_shared_attr_fails(self, tmp_path):
        pkg = _write_pkg(tmp_path, {"m.py": self.FIXTURE})
        violations, _ = analyze_paths([pkg], Contracts())
        assert [v.code for v in violations] == ["EF004"]
        assert violations[0].symbol.endswith(":supervise")
        assert "Shared.beats" in violations[0].message

    def test_declared_shared_attr_passes(self, tmp_path):
        pkg = _write_pkg(tmp_path, {"m.py": self.FIXTURE})
        contracts = Contracts(
            shared=(SharedState("Shared", ("beats",), guard="beats_lock"),)
        )
        violations, _ = analyze_paths([pkg], contracts)
        assert violations == []


class TestSelection:
    def test_select_limits_rule_set(self, tmp_path):
        pkg = _write_pkg(
            tmp_path, {"m.py": GENERATION_FIXTURE + TestEF002.FIXTURE}
        )
        violations, _ = analyze_paths([pkg], _contracts(), select=["EF002"])
        assert violations and all(v.code == "EF002" for v in violations)
        violations, _ = analyze_paths([pkg], _contracts(), ignore=["EF002"])
        assert violations and all(v.code != "EF002" for v in violations)
