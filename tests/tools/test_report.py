"""SARIF rendering and baseline-mode tests (shared CLxxx/EFxxx plumbing),
plus CLI integration for --analyze / --effects-dump / --baseline."""

import json

import pytest

from tools.codalint.cli import main
from tools.codalint.report import (
    BaselineError,
    apply_baseline,
    load_baseline,
    render_sarif,
    write_baseline,
)
from tools.codalint.rules import Violation


def _violation(**overrides):
    base = dict(
        path="src/x.py", line=3, col=1, code="CL001",
        message="wall-clock read",
    )
    base.update(overrides)
    return Violation(**base)


class TestSarif:
    def test_document_shape(self):
        violations = [
            _violation(),
            _violation(code="EF001", message="missing bump",
                       symbol="m:Node.leak"),
        ]
        doc = json.loads(render_sarif(violations))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "codalint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == ["CL001", "EF001"]
        results = run["results"]
        assert results[0]["ruleId"] == "CL001"
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/x.py"
        assert location["region"]["startLine"] == 3
        assert results[1]["properties"]["symbol"] == "m:Node.leak"

    def test_empty_is_valid(self):
        doc = json.loads(render_sarif([]))
        assert doc["runs"][0]["results"] == []


class TestBaseline:
    def test_roundtrip_and_gating(self, tmp_path):
        baseline_path = tmp_path / "base.json"
        known = [_violation(), _violation(code="CL003", message="set iter")]
        write_baseline(baseline_path, known)
        loaded = load_baseline(baseline_path)

        # Known findings are suppressed even if their line moved.
        moved = [_violation(line=99)]
        fresh, suppressed = apply_baseline(moved, loaded)
        assert fresh == [] and suppressed == 1

        # A new finding still fails.
        new = [_violation(message="another wall-clock read")]
        fresh, suppressed = apply_baseline(new, loaded)
        assert len(fresh) == 1 and suppressed == 0

    def test_duplicate_findings_matched_by_count(self, tmp_path):
        baseline_path = tmp_path / "base.json"
        write_baseline(baseline_path, [_violation()])
        loaded = load_baseline(baseline_path)
        two = [_violation(line=1), _violation(line=2)]
        fresh, suppressed = apply_baseline(two, loaded)
        assert len(fresh) == 1 and suppressed == 1

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(bad)
        bad.write_text('{"no": "findings"}')
        with pytest.raises(BaselineError):
            load_baseline(bad)


class TestCli:
    def _bad_file(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("import time\n\ndef now():\n    return time.time()\n")
        return target

    def test_sarif_format(self, tmp_path, capsys):
        target = self._bad_file(tmp_path)
        assert main([str(target), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"][0]["ruleId"] == "CL001"

    def test_baseline_update_then_pass_then_new_finding(
        self, tmp_path, capsys
    ):
        target = self._bad_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            [str(target), "--baseline", str(baseline), "--update-baseline"]
        ) == 0
        assert main([str(target), "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        target.write_text(
            target.read_text()
            + "\ndef later():\n    return time.time()\n"
        )
        assert main([str(target), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "CL001" in out

    def test_update_baseline_requires_baseline(self, capsys):
        assert main(["src", "--update-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_analyze_clean_tree(self, capsys):
        assert main(["src/repro", "--analyze"]) == 0

    def test_analyze_catches_fixture(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "m.py").write_text(
            "class Generation:\n"
            "    def __init__(self):\n"
            "        self.value = 0\n"
            "    def bump(self):\n"
            "        self.value += 1\n"
            "class Node:\n"
            "    def __init__(self):\n"
            "        self.used = 0\n"
            "        self.generation = Generation()\n"
            "    def leak(self, n):\n"
            "        self.used += n\n"
        )
        manifest = tmp_path / "contracts.toml"
        manifest.write_text(
            "[generation]\n"
            'hooks = ["pkg.m:Generation.bump"]\n'
            "[[tracked]]\n"
            'class = "Node"\n'
            'attrs = ["used"]\n'
        )
        assert main(
            [str(pkg), "--analyze", "--contracts", str(manifest)]
        ) == 1
        assert "EF001" in capsys.readouterr().out

    def test_effects_dump(self, tmp_path, capsys):
        dump_path = tmp_path / "effects.json"
        assert main(
            ["src/repro", "--analyze", "--effects-dump", str(dump_path)]
        ) == 0
        table = json.loads(dump_path.read_text())
        allocate = next(
            v for k, v in table.items() if k.endswith(":Node.allocate")
        )
        assert "GenerationCounter.value" in allocate["transitive_writes"]

    def test_effects_dump_requires_analyze(self, tmp_path, capsys):
        assert main(["src", "--effects-dump", str(tmp_path / "e.json")]) == 2

    def test_list_rules_includes_effect_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "EF001" in out and "CL001" in out
