"""Tests for the repo's static-analysis tooling."""
