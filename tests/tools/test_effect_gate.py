"""The acceptance gate for the effect analysis.

Mutation check: deleting any single ``generation.bump()`` /
``generation.bump_node(...)`` call from ``src/repro/cluster/node.py``
(on a copied tree) must make the analysis report **exactly** the
function that lost its bump — one EF001 finding, nothing else.  And the
committed tree must analyze clean.
"""

import dataclasses
import re
import shutil
import time
from pathlib import Path

import pytest

from tools.codalint.analysis_rules import analyze_paths
from tools.codalint.contracts import load_contracts

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
NODE_PY = SRC / "cluster" / "node.py"
MANIFEST = REPO_ROOT / "contracts.toml"

#: Bump call site -> the function EF001 must blame when it disappears.
EXPECTED_BLAME = {
    "mark_down": "Node.mark_down",
    "mark_up": "Node.mark_up",
    "allocate": "Node.allocate",
    "release": "Node.release",
    "resize_cpus": "Node.resize_cpus",
    "fail_gpu": "Node.fail_gpu",
    "repair_gpu": "Node.repair_gpu",
    "restore": "Node.restore",
}


def _bump_sites():
    """(line_number, enclosing_function_name) for every bump call —
    the plain (coarse) ``bump()`` and the node-attributed ``bump_node``."""
    sites = []
    current = None
    for lineno, line in enumerate(NODE_PY.read_text().splitlines(), 1):
        match = re.match(r"    def (\w+)", line)
        if match:
            current = match.group(1)
        if "generation.bump()" in line or "generation.bump_node(" in line:
            sites.append((lineno, current))
    return sites


BUMP_SITES = _bump_sites()


def test_node_has_the_expected_bump_sites():
    assert sorted(name for _, name in BUMP_SITES) == sorted(EXPECTED_BLAME)


def test_committed_tree_analyzes_clean():
    contracts = load_contracts(MANIFEST)
    violations, _ = analyze_paths([SRC], contracts)
    assert violations == [], [v.render() for v in violations]


@pytest.mark.parametrize(
    "lineno,func_name", BUMP_SITES, ids=[name for _, name in BUMP_SITES]
)
def test_deleting_one_bump_blames_exactly_that_function(
    tmp_path, lineno, func_name
):
    mutated = tmp_path / "repro"
    shutil.copytree(SRC, mutated)
    lines = NODE_PY.read_text().splitlines(True)
    assert "generation.bump" in lines[lineno - 1]
    lines[lineno - 1] = re.sub(
        r"\S.*", "pass", lines[lineno - 1], count=1
    )
    (mutated / "cluster" / "node.py").write_text("".join(lines))

    contracts = load_contracts(MANIFEST)
    violations, _ = analyze_paths([mutated], contracts)

    assert violations, f"deleting bump in {func_name} went undetected"
    assert all(v.code == "EF001" for v in violations)
    blamed = {v.symbol.split(":")[-1] for v in violations}
    assert blamed == {EXPECTED_BLAME[func_name]}


#: The lazy-reprice memos on the runner's running-job records.  EF002
#: must keep *detecting* them: dropping any one [[cache]] declaration
#: from the manifest has to surface as findings against runner.py, or
#: the clean-tree test above proves nothing about these attributes.
RUNNER_MEMOS = (
    ("_RunningGpu", "reprice_memo"),
    ("_RunningGpu", "state_memo"),
    ("_RunningCpu", "reprice_memo"),
)


@pytest.mark.parametrize(
    "owner,attr", RUNNER_MEMOS, ids=[f"{o}.{a}" for o, a in RUNNER_MEMOS]
)
def test_undeclaring_a_runner_memo_fails_ef002(owner, attr):
    contracts = load_contracts(MANIFEST)
    assert contracts.cache_declared(owner, attr)
    stripped = dataclasses.replace(
        contracts,
        caches=tuple(
            c
            for c in contracts.caches
            if not (c.owner == owner and c.attr == attr)
        ),
    )
    violations, _ = analyze_paths([SRC], stripped)
    assert violations, f"undeclared {owner}.{attr} went undetected"
    assert all(v.code == "EF002" for v in violations)
    assert all(f"{owner}.{attr}" in v.message for v in violations)
    assert all(v.path.endswith("runner.py") for v in violations)


def test_full_analysis_is_fast_enough_for_ci():
    contracts = load_contracts(MANIFEST)
    start = time.monotonic()
    analyze_paths([SRC], contracts)
    elapsed = time.monotonic() - start
    assert elapsed < 30.0, f"analysis took {elapsed:.1f}s (CI budget: 30s)"
