"""Call-graph builder tests on the constructs that break naive resolvers:
properties, ``functools.partial``, registry dispatch through a dict of
constructors, ``super()``, and comprehension scopes."""

import textwrap

from tools.codalint.callgraph import build_program
from tools.codalint.effects import EffectAnalysis


def _write_pkg(tmp_path, files):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for name, source in files.items():
        target = pkg / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return pkg


def _analyze(tmp_path, files):
    pkg = _write_pkg(tmp_path, files)
    program = build_program([pkg])
    return program, EffectAnalysis(program).run()


def _only(effects, suffix):
    matches = [f for f in effects if f.endswith(suffix)]
    assert len(matches) == 1, f"{suffix}: {matches}"
    return matches[0]


class TestProperties:
    def test_property_read_is_a_call_to_the_getter(self, tmp_path):
        program, analysis = _analyze(
            tmp_path,
            {
                "m.py": """
                class Counter:
                    def __init__(self):
                        self._n = 0

                    @property
                    def value(self):
                        return self._n

                def peek(counter: "Counter"):
                    return counter.value
                """
            },
        )
        peek = _only(analysis.effects, ":peek")
        getter = _only(program.functions, ":Counter.value")
        assert getter in analysis.effects[peek].calls
        # The getter's read flows transitively into the caller.
        assert ("Counter", "_n") in analysis.effects[peek].transitive_reads


class TestPartial:
    def test_functools_partial_creates_a_call_edge(self, tmp_path):
        program, analysis = _analyze(
            tmp_path,
            {
                "m.py": """
                import functools

                class Box:
                    def __init__(self):
                        self.items = 0

                def fill(box: "Box", n):
                    box.items = n

                def make_filler(box: "Box"):
                    return functools.partial(fill, box, 3)
                """
            },
        )
        maker = _only(analysis.effects, ":make_filler")
        fill = _only(program.functions, ":fill")
        assert fill in analysis.effects[maker].calls
        assert ("Box", "items") in analysis.effects[maker].transitive_writes


class TestRegistryDispatch:
    def test_constructor_registry_resolves_all_branches(self, tmp_path):
        program, analysis = _analyze(
            tmp_path,
            {
                "policies.py": """
                class Base:
                    def __init__(self):
                        self.kind = "base"

                class Fast(Base):
                    def __init__(self):
                        self.kind = "fast"

                class Safe(Base):
                    def __init__(self):
                        self.kind = "safe"

                def build(name):
                    if name == "fast":
                        return Fast()
                    return Safe()
                """
            },
        )
        build = _only(analysis.effects, ":build")
        calls = analysis.effects[build].calls
        assert _only(program.functions, ":Fast.__init__") in calls
        assert _only(program.functions, ":Safe.__init__") in calls

    def test_cha_dispatch_includes_overrides(self, tmp_path):
        program, analysis = _analyze(
            tmp_path,
            {
                "m.py": """
                class Scheduler:
                    def tick(self):
                        return 0

                class Coda(Scheduler):
                    def tick(self):
                        return 1

                def drive(sched: "Scheduler"):
                    return sched.tick()
                """
            },
        )
        drive = _only(analysis.effects, ":drive")
        calls = analysis.effects[drive].calls
        assert _only(program.functions, ":Scheduler.tick") in calls
        assert _only(program.functions, ":Coda.tick") in calls


class TestSuper:
    def test_super_resolves_to_nearest_ancestor_def(self, tmp_path):
        program, analysis = _analyze(
            tmp_path,
            {
                "m.py": """
                class Base:
                    def setup(self):
                        self.ready = True

                class Child(Base):
                    def setup(self):
                        super().setup()
                        self.extra = 1
                """
            },
        )
        child = _only(analysis.effects, ":Child.setup")
        base = _only(program.functions, ":Base.setup")
        assert base in analysis.effects[child].calls
        assert ("Base", "ready") in analysis.effects[child].transitive_writes


class TestComprehensionScopes:
    def test_comprehension_target_gets_element_type(self, tmp_path):
        program, analysis = _analyze(
            tmp_path,
            {
                "m.py": """
                from typing import List

                class Gpu:
                    def __init__(self):
                        self.busy = False

                class Node:
                    def __init__(self):
                        self.gpus: List[Gpu] = []

                    def busy_count(self):
                        return len([g for g in self.gpus if g.busy])
                """
            },
        )
        method = _only(analysis.effects, ":Node.busy_count")
        assert ("Gpu", "busy") in analysis.effects[method].reads


class TestCrossModuleImports:
    def test_imported_function_and_class_resolve(self, tmp_path):
        program, analysis = _analyze(
            tmp_path,
            {
                "a.py": """
                class Widget:
                    def __init__(self):
                        self.spin = 0

                def poke(widget: "Widget"):
                    widget.spin += 1
                """,
                "b.py": """
                from pkg.a import Widget, poke

                def run():
                    widget = Widget()
                    poke(widget)
                """,
            },
        )
        run = _only(analysis.effects, ":run")
        calls = analysis.effects[run].calls
        assert _only(program.functions, ":poke") in calls
        assert _only(program.functions, ":Widget.__init__") in calls
        assert ("Widget", "spin") in analysis.effects[run].transitive_writes


class TestRealTree:
    def test_scheduler_registry_dispatch(self):
        program = build_program(["src/repro/parallel", "src/repro/schedulers",
                                 "src/repro/core", "src/repro/cluster",
                                 "src/repro/sim", "src/repro/config.py"])
        analysis = EffectAnalysis(program).run()
        build = _only(analysis.effects, ":build_scheduler")
        names = {
            program.functions[f].short_qualname
            for f in analysis.effects[build].calls
        }
        assert {"FifoScheduler.__init__", "DrfScheduler.__init__",
                "CodaScheduler.__init__"} <= names
