"""Metrics collector lifecycle accounting."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.fragmentation import FragmentationTracker
from repro.metrics.report import render_cdf, render_series, render_table
from repro.perfmodel.stages import TrainSetup
from repro.workload.job import CpuJob, GpuJob, JobKind


def _gpu(job_id="g1", tenant=1, nodes=1, cpus=2):
    return GpuJob(
        job_id=job_id,
        tenant_id=tenant,
        submit_time=0.0,
        model_name="resnet50",
        setup=TrainSetup(nodes, 1),
        requested_cpus=cpus,
        total_iterations=10,
    )


def _cpu(job_id="c1", tenant=2):
    return CpuJob(job_id=job_id, tenant_id=tenant, submit_time=0.0, cores=4)


class TestJobLifecycle:
    def test_full_lifecycle_metrics(self):
        collector = MetricsCollector()
        collector.job_submitted(_gpu(), 5.0)
        collector.job_started("g1", 15.0, cpus_per_node=3)
        collector.job_finished("g1", 115.0)
        record = collector.records["g1"]
        assert record.queueing_time == 10.0
        assert record.processing_time == 100.0
        assert record.end_to_end == 110.0

    def test_double_submit_raises(self):
        collector = MetricsCollector()
        collector.job_submitted(_gpu(), 0.0)
        with pytest.raises(RuntimeError):
            collector.job_submitted(_gpu(), 1.0)

    def test_double_finish_raises(self):
        collector = MetricsCollector()
        collector.job_submitted(_gpu(), 0.0)
        collector.job_started("g1", 1.0, 2)
        collector.job_finished("g1", 2.0)
        with pytest.raises(RuntimeError):
            collector.job_finished("g1", 3.0)

    def test_restart_keeps_first_start(self):
        collector = MetricsCollector()
        collector.job_submitted(_cpu(), 0.0)
        collector.job_started("c1", 10.0, 4)
        collector.job_preempted("c1", 20.0)
        collector.job_started("c1", 30.0, 4)
        record = collector.records["c1"]
        assert record.queueing_time == 10.0
        assert record.start_count == 2
        assert record.preempt_count == 1

    def test_core_adjustment_is_per_node(self):
        collector = MetricsCollector()
        collector.job_submitted(_gpu(nodes=2, cpus=3), 0.0)
        collector.job_started("g1", 1.0, cpus_per_node=5)
        assert collector.records["g1"].core_adjustment == 2

    def test_resize_updates_final_cpus(self):
        collector = MetricsCollector()
        collector.job_submitted(_gpu(cpus=2), 0.0)
        collector.job_started("g1", 1.0, 2)
        collector.job_resized("g1", 6)
        assert collector.records["g1"].core_adjustment == 4


class TestQueueingViews:
    def _collector(self):
        collector = MetricsCollector()
        collector.job_submitted(_gpu("g1", tenant=1), 0.0)
        collector.job_submitted(_gpu("g2", tenant=2), 0.0)
        collector.job_submitted(_cpu("c1", tenant=1), 0.0)
        collector.job_started("g1", 60.0, 2)
        collector.job_started("c1", 5.0, 4)
        return collector

    def test_queueing_times_by_kind(self):
        collector = self._collector()
        assert collector.queueing_times(JobKind.GPU) == [60.0]
        assert collector.queueing_times(JobKind.CPU) == [5.0]

    def test_censoring_counts_unstarted(self):
        collector = self._collector()
        delays = collector.queueing_times(
            JobKind.GPU, include_unstarted_until=600.0
        )
        assert sorted(delays) == [60.0, 600.0]

    def test_by_tenant(self):
        collector = self._collector()
        by_tenant = collector.queueing_times_by_tenant()
        assert by_tenant[1] == [60.0, 5.0] or sorted(by_tenant[1]) == [5.0, 60.0]
        assert 2 not in by_tenant

    def test_finished_and_started_views(self):
        collector = self._collector()
        collector.job_finished("c1", 50.0)
        assert len(collector.finished_records()) == 1
        assert len(collector.started_records(JobKind.GPU)) == 1


class TestFragmentationTracker:
    def test_rate_over_contended_samples_only(self):
        tracker = FragmentationTracker()
        tracker.record(0.0, 0.5, 0)
        tracker.record(1.0, 0.2, 3)
        tracker.record(2.0, 0.4, 1)
        assert tracker.fragmentation_rate() == pytest.approx(0.3)
        assert tracker.contended_fraction() == pytest.approx(2 / 3)

    def test_no_contention_means_zero(self):
        tracker = FragmentationTracker()
        tracker.record(0.0, 0.9, 0)
        assert tracker.fragmentation_rate() == 0.0

    def test_empty_tracker(self):
        tracker = FragmentationTracker()
        assert tracker.fragmentation_rate() == 0.0
        assert tracker.contended_fraction() == 0.0

    def test_validation(self):
        tracker = FragmentationTracker()
        with pytest.raises(ValueError):
            tracker.record(0.0, 1.5, 0)
        with pytest.raises(ValueError):
            tracker.record(0.0, 0.5, -1)


class TestReportRendering:
    def test_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_table_title(self):
        text = render_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_series_thinning(self):
        points = [(float(t), float(t)) for t in range(100)]
        text = render_series("metric", points, max_points=10)
        assert len(text.splitlines()) <= 15

    def test_series_empty(self):
        assert "empty" in render_series("metric", [])

    def test_cdf_rendering(self):
        points = [(1.0, 0.25), (2.0, 0.5), (4.0, 1.0)]
        text = render_cdf("delay", points)
        assert "p50" in text

    def test_cdf_empty(self):
        assert "empty" in render_cdf("delay", [])


class TestBatchedSampling:
    """sample_cluster appends one batch across seven series; the shared
    time column must still reject clock regressions."""

    def _sample(self, collector, now, depth=0):
        collector.sample_cluster(
            now,
            gpu_active_rate=0.5,
            gpu_utilization=0.6,
            gpu_utilization_overall=0.4,
            cpu_active_rate=0.7,
            gpu_queue_depth=depth,
            cpu_queue_depth=depth,
            free_gpu_fraction=0.5,
            hot_nodes=1,
        )

    def test_batch_lands_in_every_series(self):
        collector = MetricsCollector()
        self._sample(collector, 10.0)
        self._sample(collector, 20.0)
        for series in (
            collector.gpu_active_rate,
            collector.gpu_utilization,
            collector.gpu_utilization_overall,
            collector.cpu_active_rate,
            collector.gpu_queue_depth,
            collector.cpu_queue_depth,
            collector.hot_nodes,
        ):
            assert series.times() == [10.0, 20.0]

    def test_time_regression_rejected(self):
        collector = MetricsCollector()
        self._sample(collector, 10.0)
        with pytest.raises(ValueError):
            self._sample(collector, 9.0)

    def test_equal_timestamps_allowed(self):
        collector = MetricsCollector()
        self._sample(collector, 10.0)
        self._sample(collector, 10.0)
        assert len(collector.hot_nodes) == 2
