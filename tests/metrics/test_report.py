"""Golden-output tests for the plain-text report renderers.

The exact strings matter: the CLI summary and the benchmark harness both
print these tables, so a formatting drift would silently change every
tracked artifact.  Each golden below is the byte-exact expected render.
"""

import pytest

from repro.metrics.report import render_cdf, render_series, render_table


class TestRenderTableGolden:
    def test_aligned_table_with_title(self):
        out = render_table(
            ["policy", "gpu util"],
            [("fifo", "0.612"), ("coda", "0.847")],
            title="Summary:",
        )
        assert out == (
            "Summary:\n"
            "policy  gpu util\n"
            "------  --------\n"
            "fifo    0.612   \n"
            "coda    0.847   "
        )

    def test_column_width_tracks_longest_cell(self):
        out = render_table(["x"], [("longer-than-header",)])
        lines = out.split("\n")
        assert lines[1] == "-" * len("longer-than-header")

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [("only-one",)])

    def test_no_title_omits_title_line(self):
        out = render_table(["a"], [("1",)])
        assert out.split("\n")[0] == "a"


class TestRenderSeriesDownsampling:
    def test_short_series_renders_every_point(self):
        out = render_series("util", [(0.0, 0.5), (30.0, 0.75)])
        assert out == (
            "t(s)  util \n"
            "----  -----\n"
            "0     0.500\n"
            "30    0.750"
        )

    def test_thinning_keeps_last_point(self):
        points = [(float(i), i / 10.0) for i in range(5)]
        out = render_series("util", points, max_points=2)
        # Stride 2 keeps t=0, 2, 4; the final sample must survive thinning.
        assert out == (
            "t(s)  util \n"
            "----  -----\n"
            "0     0.000\n"
            "2     0.200\n"
            "4     0.400"
        )

    def test_thinning_appends_dropped_final_point(self):
        points = [(float(i), 0.0) for i in range(10)]
        out = render_series("util", points, max_points=3)
        rows = out.split("\n")[2:]
        assert rows[-1].startswith("9")

    def test_empty_series(self):
        assert render_series("util", []) == "util: (empty)"

    def test_single_sample(self):
        out = render_series("util", [(60.0, 0.25)])
        assert out == (
            "t(s)  util \n"
            "----  -----\n"
            "60    0.250"
        )

    def test_respects_value_format(self):
        out = render_series("util", [(0.0, 0.5)], value_format="{:.1f}")
        assert out.split("\n")[-1] == "0     0.5 "


class TestRenderCdfGolden:
    def test_quantile_rows(self):
        out = render_cdf(
            "queueing",
            [(1.0, 0.5), (4.0, 0.9), (9.0, 1.0)],
            fractions=(0.5, 0.95),
        )
        assert out == (
            "fraction  queueing\n"
            "--------  --------\n"
            "p50       1.0     \n"
            "p95       9.0     "
        )

    def test_fraction_beyond_data_uses_last_value(self):
        out = render_cdf("q", [(2.0, 0.4)], fractions=(0.99,))
        assert out.split("\n")[-1].split()[1] == "2.0"

    def test_empty_cdf(self):
        assert render_cdf("queueing", []) == "queueing: (empty)"
