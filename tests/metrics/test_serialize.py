"""Exact RunResult serialization: the round trip must be byte-stable."""

import json

import pytest

from repro.experiments.scenarios import run_scenario, small_scenario
from repro.faults import FaultConfig
from repro.health.config import HealthConfig
from repro.metrics.serialize import (
    RESULT_SCHEMA_VERSION,
    run_result_from_dict,
    run_result_to_dict,
)
from repro.parallel import RunSpec


def _round_trip_is_exact(result):
    first = run_result_to_dict(result)
    rebuilt = run_result_from_dict(json.loads(json.dumps(first)))
    second = run_result_to_dict(rebuilt)
    return json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


class TestRoundTrip:
    def test_failure_free_run(self):
        from repro.schedulers.fifo import FifoScheduler

        scenario = small_scenario(duration_days=0.02, nodes=4, seed=1)
        result = run_scenario(scenario, FifoScheduler())
        assert _round_trip_is_exact(result)

    def test_faulted_run_with_health_tracking(self):
        scenario = small_scenario(
            duration_days=0.05, nodes=4, seed=2
        ).with_faults(FaultConfig(seed=3, node_mtbf_s=1800.0))
        spec = RunSpec(
            scenario=scenario,
            scheduler="coda",
            health_config=HealthConfig(quarantine_threshold=1.0),
        )
        result = spec.execute()
        assert _round_trip_is_exact(result)

    def test_rebuilt_result_preserves_scalars(self):
        scenario = small_scenario(duration_days=0.02, nodes=4, seed=1)
        result = RunSpec(scenario=scenario, scheduler="drf").execute()
        rebuilt = run_result_from_dict(run_result_to_dict(result))
        assert rebuilt.scheduler_name == result.scheduler_name
        assert rebuilt.horizon_s == result.horizon_s
        assert rebuilt.finished_gpu_jobs == result.finished_gpu_jobs
        assert rebuilt.events_fired == result.events_fired
        assert rebuilt.flap_suppressions == result.flap_suppressions

    def test_rebuilt_collector_supports_figure_queries(self):
        scenario = small_scenario(duration_days=0.02, nodes=4, seed=1)
        result = RunSpec(scenario=scenario, scheduler="coda").execute()
        rebuilt = run_result_from_dict(run_result_to_dict(result))
        from repro.workload.job import JobKind

        assert rebuilt.collector.queueing_times(
            JobKind.GPU, include_unstarted_until=result.horizon_s
        ) == result.collector.queueing_times(
            JobKind.GPU, include_unstarted_until=result.horizon_s
        )
        assert (
            rebuilt.collector.gpu_utilization.points
            == result.collector.gpu_utilization.points
        )


class TestSchemaGuard:
    def test_wrong_schema_rejected(self):
        scenario = small_scenario(duration_days=0.02, nodes=4, seed=1)
        data = run_result_to_dict(RunSpec(scenario=scenario).execute())
        data["schema"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            run_result_from_dict(data)

    def test_missing_schema_rejected(self):
        scenario = small_scenario(duration_days=0.02, nodes=4, seed=1)
        data = run_result_to_dict(RunSpec(scenario=scenario).execute())
        del data["schema"]
        with pytest.raises(ValueError, match="schema"):
            run_result_from_dict(data)
