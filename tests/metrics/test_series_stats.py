"""Series primitives and distribution statistics."""

import pytest

from repro.metrics.series import SampledSeries, TimeWeightedValue
from repro.metrics.stats import (
    cdf_points,
    fraction_at_most,
    fraction_exceeding,
    mean,
    percentile,
)


class TestSampledSeries:
    def test_record_and_mean(self):
        series = SampledSeries("x")
        series.record(0.0, 1.0)
        series.record(1.0, 3.0)
        assert series.mean() == pytest.approx(2.0)
        assert len(series) == 2

    def test_rejects_time_regression(self):
        series = SampledSeries("x")
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.record(4.0, 1.0)

    def test_mean_between(self):
        series = SampledSeries("x")
        for t in range(10):
            series.record(float(t), float(t))
        assert series.mean_between(2.0, 4.0) == pytest.approx(3.0)

    def test_mean_between_empty_window(self):
        series = SampledSeries("x")
        series.record(0.0, 1.0)
        assert series.mean_between(5.0, 6.0) == 0.0

    def test_empty_mean_is_zero(self):
        assert SampledSeries("x").mean() == 0.0

    def test_values_and_times(self):
        series = SampledSeries("x")
        series.record(1.0, 10.0)
        assert series.times() == [1.0]
        assert series.values() == [10.0]


class TestTimeWeightedValue:
    def test_integrates_step_function(self):
        signal = TimeWeightedValue("x")
        signal.set(0.0, 1.0)
        signal.set(10.0, 3.0)
        assert signal.mean(until=20.0) == pytest.approx(2.0)

    def test_current_value(self):
        signal = TimeWeightedValue("x")
        signal.set(0.0, 5.0)
        assert signal.current == 5.0

    def test_mean_without_updates_is_current(self):
        signal = TimeWeightedValue("x")
        assert signal.mean() == 0.0

    def test_rejects_time_regression(self):
        signal = TimeWeightedValue("x")
        signal.set(5.0, 1.0)
        with pytest.raises(ValueError):
            signal.set(4.0, 1.0)

    def test_until_before_last_raises(self):
        signal = TimeWeightedValue("x")
        signal.set(5.0, 1.0)
        with pytest.raises(ValueError):
            signal.mean(until=4.0)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestFractions:
    def test_fraction_exceeding(self):
        assert fraction_exceeding([1, 2, 3, 4], 2) == pytest.approx(0.5)

    def test_fraction_exceeding_is_strict(self):
        assert fraction_exceeding([2, 2], 2) == 0.0

    def test_fraction_at_most(self):
        assert fraction_at_most([1, 2, 3, 4], 2) == pytest.approx(0.5)

    def test_empty_inputs(self):
        assert fraction_exceeding([], 1) == 0.0
        assert fraction_at_most([], 1) == 0.0

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0


class TestCdf:
    def test_steps_reach_one(self):
        points = cdf_points([3, 1, 2])
        assert points[-1] == (3, 1.0)

    def test_duplicates_collapse(self):
        points = cdf_points([1, 1, 2])
        assert points == [(1, pytest.approx(2 / 3)), (2, 1.0)]

    def test_empty(self):
        assert cdf_points([]) == []

    def test_monotone(self):
        points = cdf_points([5, 3, 8, 1, 3])
        values = [v for v, _ in points]
        fracs = [f for _, f in points]
        assert values == sorted(values)
        assert fracs == sorted(fracs)
