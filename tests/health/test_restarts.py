"""Unit tests for the restart-budget policy."""

import pytest

from repro.health.restarts import RestartPolicy


class TestRequeueDelay:
    def test_first_failure_requeues_immediately(self):
        assert RestartPolicy().requeue_delay(1) == 0.0

    def test_later_failures_back_off_exponentially(self):
        policy = RestartPolicy(base_delay_s=30.0, backoff=2.0)
        assert policy.requeue_delay(2) == pytest.approx(30.0)
        assert policy.requeue_delay(3) == pytest.approx(60.0)
        assert policy.requeue_delay(4) == pytest.approx(120.0)

    def test_delay_caps_at_max(self):
        policy = RestartPolicy(base_delay_s=30.0, backoff=2.0, max_delay_s=100.0)
        assert policy.requeue_delay(10) == pytest.approx(100.0)


class TestBudget:
    def test_exhausted_after_max_restarts(self):
        policy = RestartPolicy(max_restarts=3)
        assert not policy.exhausted(3)
        assert policy.exhausted(4)

    def test_none_means_unlimited(self):
        policy = RestartPolicy(max_restarts=None)
        assert not policy.exhausted(10_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            RestartPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RestartPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RestartPolicy(max_delay_s=-1.0)
