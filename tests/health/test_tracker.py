"""Unit tests for the node-health state machine."""

import pytest

from repro.health.config import HealthConfig
from repro.health.tracker import NodeHealthState, NodeHealthTracker


def make_tracker(**overrides) -> NodeHealthTracker:
    return NodeHealthTracker(HealthConfig(**overrides))


class TestStrikeAccumulation:
    def test_fresh_node_is_healthy(self):
        tracker = make_tracker()
        assert tracker.state_of(0, 0.0) is NodeHealthState.HEALTHY

    def test_single_crash_makes_suspect_not_quarantined(self):
        tracker = make_tracker()
        assert not tracker.record_failure(0, 10.0, kind="crash")
        assert tracker.state_of(0, 10.0) is NodeHealthState.SUSPECT

    def test_third_crash_quarantines_at_default_threshold(self):
        tracker = make_tracker()
        assert not tracker.record_failure(0, 10.0, kind="crash")
        assert not tracker.record_failure(0, 20.0, kind="crash")
        assert tracker.record_failure(0, 30.0, kind="crash")
        assert tracker.state_of(0, 30.0) is NodeHealthState.QUARANTINED
        assert tracker.quarantines_started == 1

    def test_telemetry_strikes_weigh_a_quarter(self):
        tracker = make_tracker()
        # 11 dropouts at 0.25 each = 2.75 < 3.0; the 12th crosses.
        for i in range(11):
            assert not tracker.record_failure(0, float(i), kind="telemetry")
        assert tracker.record_failure(0, 11.0, kind="telemetry")

    def test_strikes_outside_window_expire(self):
        tracker = make_tracker(failure_window_s=100.0)
        tracker.record_failure(0, 0.0, kind="crash")
        tracker.record_failure(0, 50.0, kind="crash")
        # The first strike has aged out by t=150; score is 2.0, not 3.0.
        assert not tracker.record_failure(0, 150.0, kind="crash")
        assert tracker.state_of(0, 150.0) is NodeHealthState.SUSPECT

    def test_suspect_decays_to_healthy_when_strikes_expire(self):
        tracker = make_tracker(failure_window_s=100.0)
        tracker.record_failure(0, 0.0, kind="crash")
        assert tracker.state_of(0, 50.0) is NodeHealthState.SUSPECT
        assert tracker.state_of(0, 200.0) is NodeHealthState.HEALTHY

    def test_unknown_kind_rejected(self):
        tracker = make_tracker()
        with pytest.raises(ValueError):
            tracker.record_failure(0, 0.0, kind="cosmic-ray")

    def test_disabled_tracker_never_quarantines(self):
        tracker = make_tracker(enabled=False)
        for i in range(10):
            assert not tracker.record_failure(0, float(i), kind="crash")
        assert tracker.state_of(0, 10.0) is NodeHealthState.HEALTHY

    def test_nodes_tracked_independently(self):
        tracker = make_tracker()
        for i in range(3):
            tracker.record_failure(0, float(i), kind="crash")
        assert tracker.state_of(0, 3.0) is NodeHealthState.QUARANTINED
        assert tracker.state_of(1, 3.0) is NodeHealthState.HEALTHY


class TestQuarantineLifecycle:
    def quarantine(self, tracker, node_id=0, at=0.0):
        for i in range(3):
            tracker.record_failure(node_id, at + i, kind="crash")

    def test_quarantine_lasts_base_duration_then_probation(self):
        tracker = make_tracker(base_quarantine_s=1000.0, probation_s=500.0)
        self.quarantine(tracker)
        until = tracker.quarantine_until(0)
        assert until == pytest.approx(2.0 + 1000.0)
        assert tracker.state_of(0, until - 1.0) is NodeHealthState.QUARANTINED
        assert tracker.state_of(0, until) is NodeHealthState.PROBATION
        assert tracker.state_of(0, until + 500.0) is NodeHealthState.HEALTHY

    def test_probation_strike_requarantines_with_doubled_window(self):
        tracker = make_tracker(base_quarantine_s=1000.0, probation_s=500.0)
        self.quarantine(tracker)
        first_end = tracker.quarantine_until(0)
        # One strike during probation re-benches the node immediately.
        assert tracker.record_failure(0, first_end + 10.0, kind="gpu")
        second_end = tracker.quarantine_until(0)
        assert second_end - (first_end + 10.0) == pytest.approx(2000.0)
        assert tracker.quarantines_started == 2

    def test_quarantine_duration_caps_at_max(self):
        tracker = make_tracker(
            base_quarantine_s=1000.0,
            quarantine_backoff=2.0,
            max_quarantine_s=3000.0,
            probation_s=100.0,
        )
        self.quarantine(tracker)
        for _ in range(4):  # re-strike every probation: 2000, 3000, 3000...
            end = tracker.quarantine_until(0)
            tracker.record_failure(0, end + 1.0, kind="crash")
        last = tracker.spans[-1]
        assert last.duration_s == pytest.approx(3000.0)

    def test_clean_probation_resets_backoff(self):
        tracker = make_tracker(base_quarantine_s=1000.0, probation_s=500.0)
        self.quarantine(tracker)
        end = tracker.quarantine_until(0)
        healthy_at = end + 500.0
        assert tracker.state_of(0, healthy_at) is NodeHealthState.HEALTHY
        # A later quarantine starts at the base duration again.
        self.quarantine(tracker, at=healthy_at + 10.0)
        assert tracker.spans[-1].duration_s == pytest.approx(1000.0)

    def test_strike_while_quarantined_does_not_extend(self):
        tracker = make_tracker(base_quarantine_s=1000.0)
        self.quarantine(tracker)
        end = tracker.quarantine_until(0)
        assert not tracker.record_failure(0, end - 500.0, kind="gpu")
        assert tracker.quarantine_until(0) == end

    def test_query_is_idempotent(self):
        tracker = make_tracker()
        self.quarantine(tracker)
        end = tracker.quarantine_until(0)
        for _ in range(5):
            assert tracker.state_of(0, end - 1.0) is NodeHealthState.QUARANTINED
        assert tracker.quarantine_until(0) == end


class TestQueries:
    def test_quarantined_and_deprioritized_listings(self):
        tracker = make_tracker()
        for i in range(3):
            tracker.record_failure(2, float(i), kind="crash")
        tracker.record_failure(5, 0.0, kind="crash")
        assert tracker.quarantined_nodes(3.0) == [2]
        assert tracker.deprioritized_nodes(3.0) == [5]

    def test_probation_node_is_deprioritized(self):
        tracker = make_tracker(base_quarantine_s=100.0, probation_s=100.0)
        for i in range(3):
            tracker.record_failure(0, float(i), kind="crash")
        end = tracker.quarantine_until(0)
        assert tracker.deprioritized_nodes(end + 1.0) == [0]

    def test_total_quarantine_seconds_clips_open_spans(self):
        tracker = make_tracker(base_quarantine_s=1000.0)
        for i in range(3):
            tracker.record_failure(0, float(i), kind="crash")
        # Half-way through the window only half the span has accrued.
        assert tracker.total_quarantine_s(502.0) == pytest.approx(500.0)
        assert tracker.total_quarantine_s(10_000.0) == pytest.approx(1000.0)
