"""Whole-simulation restore: byte-identical resume, loud mismatches.

The tentpole guarantee: kill a simulation at an arbitrary event, restore
from its snapshot, run to the horizon — the serialized
:class:`RunResult` is byte-for-byte what the uninterrupted run produces,
with fault injection, health tracking, and CODA's allocator/eliminator
all live.
"""

import json

import pytest

from repro.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    build_runner,
    checkpoint_path,
    execute_with_checkpoints,
    latest_checkpoint,
    read_checkpoint,
    restore_run,
    snapshot_run,
    write_checkpoint,
)
from repro.experiments.scenarios import small_scenario
from repro.faults import FaultConfig
from repro.health import HealthConfig
from repro.metrics.serialize import run_result_to_dict
from repro.parallel.spec import RunSpec


def _dumps(result):
    return json.dumps(run_result_to_dict(result), sort_keys=True)


def _plain_spec(scheduler="coda", seed=2):
    scenario = small_scenario(duration_days=0.05, seed=seed, nodes=4)
    return RunSpec(scenario=scenario, scheduler=scheduler)


def _faulted_spec(scheduler="coda"):
    scenario = small_scenario(duration_days=0.05, seed=2, nodes=4).with_faults(
        FaultConfig(
            seed=3,
            node_mtbf_s=1800.0,
            node_mttr_s=600.0,
            gpu_mtbf_s=3600.0,
            telemetry_mtbf_s=1200.0,
            straggler_interval_s=900.0,
        )
    )
    return RunSpec(
        scenario=scenario, scheduler=scheduler, health_config=HealthConfig()
    )


def _snapshot_at(spec, kill_at):
    """Run ``spec`` for ``kill_at`` events (clock untouched past the
    horizon) and snapshot the torn-mid-run state."""
    runner = build_runner(spec)
    runner.enable_sampling()  # match run(): the sampler is part of the trajectory
    horizon = spec.resolved_scenario().horizon_s
    while runner.engine.fired < kill_at:
        next_time = runner.engine.peek_time()
        if next_time is None or next_time > horizon:
            break
        runner.engine.step()
    return snapshot_run(runner, spec)


def _resume_to_completion(spec, state):
    runner = restore_run(spec, state)
    return runner.run(until=spec.resolved_scenario().horizon_s)


class TestByteIdenticalResume:
    def test_fault_free_resume_matches_uninterrupted_run(self, tmp_path):
        spec = _plain_spec()
        state = _snapshot_at(spec, kill_at=80)
        path = checkpoint_path(str(tmp_path), 80)
        write_checkpoint(path, state)  # full disk round trip, not a dict copy
        resumed = _resume_to_completion(spec, read_checkpoint(path))
        assert _dumps(resumed) == _dumps(spec.execute())

    @pytest.mark.parametrize("scheduler", ["fifo", "drf", "coda"])
    def test_faulted_resume_matches_across_schedulers(self, scheduler):
        spec = _faulted_spec(scheduler)
        baseline = _dumps(spec.execute())
        for kill_at in (40, 110):
            state = _snapshot_at(spec, kill_at)
            assert _dumps(_resume_to_completion(spec, state)) == baseline

    def test_periodic_checkpoints_do_not_perturb_the_run(self, tmp_path):
        spec = _faulted_spec()
        observed = execute_with_checkpoints(
            spec,
            checkpoint_dir=str(tmp_path),
            checkpoint_every_events=50,
        )
        assert _dumps(observed) == _dumps(spec.execute())
        assert latest_checkpoint(str(tmp_path)) is not None

    def test_resume_from_newest_periodic_checkpoint_matches(self, tmp_path):
        spec = _faulted_spec()
        baseline = _dumps(
            execute_with_checkpoints(
                spec,
                checkpoint_dir=str(tmp_path),
                checkpoint_every_events=60,
            )
        )
        resumed = execute_with_checkpoints(
            spec, restore_from=latest_checkpoint(str(tmp_path))
        )
        assert _dumps(resumed) == baseline


class TestLoudFailures:
    def test_restore_against_a_different_trace_raises(self, tmp_path):
        state = _snapshot_at(_plain_spec(seed=2), kill_at=80)
        with pytest.raises(CheckpointError, match="does not restore"):
            restore_run(_plain_spec(seed=5), state)

    def test_resume_from_damaged_checkpoint_raises(self, tmp_path):
        path = tmp_path / "ckpt-000000000080.json"
        path.write_text("garbage", encoding="utf-8")
        with pytest.raises(CheckpointError):
            execute_with_checkpoints(
                _plain_spec(), restore_from=str(path)
            )

    def test_checkpoint_without_fault_state_rejected_by_faulted_spec(self):
        state = _snapshot_at(_plain_spec(), kill_at=40)
        assert "faults" not in state
        with pytest.raises(CheckpointError):
            restore_run(_faulted_spec(), state)

    def test_writer_rejects_non_positive_interval(self, tmp_path):
        runner = build_runner(_plain_spec())
        with pytest.raises(ValueError, match="interval"):
            CheckpointWriter(runner, str(tmp_path), 0)
