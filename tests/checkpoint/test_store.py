"""The on-disk checkpoint format: versioned, integrity-checked, atomic.

Every way a checkpoint file can be damaged — bit flips, truncation,
garbage, schema drift, missing fields — must surface as a loud
:class:`CheckpointError`, never as a silently-wrong restore.
"""

import json
import os

import pytest

from repro.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    checkpoint_path,
    latest_checkpoint,
    read_checkpoint,
    write_checkpoint,
)

STATE = {"engine": {"now": 120.0, "seq": 7}, "collector": {"x": [1, 2, 3]}}


class TestRoundTrip:
    def test_write_then_read_returns_the_state(self, tmp_path):
        path = checkpoint_path(str(tmp_path), 400)
        write_checkpoint(path, STATE)
        assert read_checkpoint(path) == STATE

    def test_document_carries_version_and_digest(self, tmp_path):
        path = checkpoint_path(str(tmp_path), 400)
        write_checkpoint(path, STATE)
        document = json.loads(open(path, encoding="utf-8").read())
        assert document["version"] == CHECKPOINT_SCHEMA_VERSION
        assert len(document["sha256"]) == 64
        assert document["state"] == STATE

    def test_write_leaves_no_temp_file_behind(self, tmp_path):
        write_checkpoint(checkpoint_path(str(tmp_path), 1), STATE)
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt-000000000001.json"]

    def test_path_is_zero_padded_for_lexicographic_order(self, tmp_path):
        assert checkpoint_path(str(tmp_path), 12).endswith(
            "ckpt-000000000012.json"
        )


class TestDamage:
    def _write(self, tmp_path):
        path = checkpoint_path(str(tmp_path), 400)
        write_checkpoint(path, STATE)
        return path

    def test_flipped_state_bit_fails_integrity_check(self, tmp_path):
        path = self._write(tmp_path)
        text = open(path, encoding="utf-8").read()
        open(path, "w", encoding="utf-8").write(text.replace("120.0", "121.0"))
        with pytest.raises(CheckpointError, match="integrity"):
            read_checkpoint(path)

    def test_tampered_digest_fails_integrity_check(self, tmp_path):
        path = self._write(tmp_path)
        document = json.loads(open(path, encoding="utf-8").read())
        document["sha256"] = "0" * 64
        open(path, "w", encoding="utf-8").write(json.dumps(document))
        with pytest.raises(CheckpointError, match="integrity"):
            read_checkpoint(path)

    def test_truncated_file_is_rejected(self, tmp_path):
        path = self._write(tmp_path)
        text = open(path, encoding="utf-8").read()
        open(path, "w", encoding="utf-8").write(text[: len(text) // 2])
        with pytest.raises(CheckpointError, match="unreadable"):
            read_checkpoint(path)

    def test_garbage_json_is_rejected(self, tmp_path):
        path = self._write(tmp_path)
        open(path, "w", encoding="utf-8").write("not json {{{")
        with pytest.raises(CheckpointError, match="unreadable"):
            read_checkpoint(path)

    def test_missing_file_is_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="unreadable"):
            read_checkpoint(str(tmp_path / "nope.json"))

    def test_schema_version_mismatch_is_rejected(self, tmp_path):
        path = self._write(tmp_path)
        document = json.loads(open(path, encoding="utf-8").read())
        document["version"] = CHECKPOINT_SCHEMA_VERSION + 1
        open(path, "w", encoding="utf-8").write(json.dumps(document))
        with pytest.raises(CheckpointError, match="schema version"):
            read_checkpoint(path)

    def test_missing_fields_are_rejected(self, tmp_path):
        path = self._write(tmp_path)
        open(path, "w", encoding="utf-8").write(
            json.dumps({"version": CHECKPOINT_SCHEMA_VERSION})
        )
        with pytest.raises(CheckpointError, match="missing"):
            read_checkpoint(path)

    def test_non_object_document_is_rejected(self, tmp_path):
        path = self._write(tmp_path)
        open(path, "w", encoding="utf-8").write("[1, 2, 3]")
        with pytest.raises(CheckpointError, match="not a JSON object"):
            read_checkpoint(path)

    def test_non_object_state_is_rejected(self, tmp_path):
        path = self._write(tmp_path)
        open(path, "w", encoding="utf-8").write(
            json.dumps(
                {
                    "version": CHECKPOINT_SCHEMA_VERSION,
                    "sha256": "0" * 64,
                    "state": [1],
                }
            )
        )
        with pytest.raises(CheckpointError, match="state is not"):
            read_checkpoint(path)


class TestLatest:
    def test_picks_the_highest_event_count(self, tmp_path):
        for fired in (100, 700, 350):
            write_checkpoint(checkpoint_path(str(tmp_path), fired), STATE)
        assert latest_checkpoint(str(tmp_path)) == checkpoint_path(
            str(tmp_path), 700
        )

    def test_ignores_foreign_and_temp_files(self, tmp_path):
        write_checkpoint(checkpoint_path(str(tmp_path), 5), STATE)
        (tmp_path / "ckpt-000000000009.json.tmp").write_text("{}")
        (tmp_path / "notes.txt").write_text("hi")
        assert latest_checkpoint(str(tmp_path)) == checkpoint_path(
            str(tmp_path), 5
        )

    def test_missing_or_empty_directory_yields_none(self, tmp_path):
        assert latest_checkpoint(str(tmp_path / "absent")) is None
        os.makedirs(tmp_path / "empty")
        assert latest_checkpoint(str(tmp_path / "empty")) is None
