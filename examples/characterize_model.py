#!/usr/bin/env python3
"""Characterize a DNN model's CPU-side resource demands (the Sec. IV study).

For a chosen Table-I model this walks the paper's characterization:
utilization vs. cores (Fig. 3), the optimal core count across training
configurations and batch sizes (Fig. 5), memory-bandwidth demand (Fig. 6),
and sensitivity to memory-bandwidth contention (Fig. 7).

Run:  python examples/characterize_model.py [model]
      (default model: alexnet; try bat, wavenet, transformer, ...)
"""

import sys

from repro import TrainSetup, get_model, training_speed
from repro.metrics.report import render_table
from repro.perfmodel import (
    ALL_MODEL_NAMES,
    ContentionState,
    memory_bandwidth_demand,
    optimal_cores,
)
from repro.perfmodel.utilization import utilization_curve


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "alexnet"
    profile = get_model(name)
    print(
        f"{profile.name}: {profile.domain.value} / {profile.arch} on "
        f"{profile.dataset}, default batch {profile.default_batch}, "
        f"{profile.weight_mb:.0f} MB of weights"
    )

    setup = TrainSetup(1, 1)
    best = optimal_cores(profile, setup)
    print(
        render_table(
            ["cores", "GPU utilization", "iters/s"],
            [
                (cores, f"{util:.3f}",
                 f"{training_speed(profile, setup, cores):.4f}")
                for cores, util in utilization_curve(profile, setup, 12)
            ],
            title=f"\nFig. 3 view — 1N1G utilization vs cores (optimum: {best}):",
        )
    )

    rows = []
    for label in ("1N1G", "1N2G", "1N4G", "2N4G"):
        for kind, batch in (
            ("default", profile.default_batch),
            ("max", profile.max_batch),
        ):
            config = TrainSetup.parse(label, batch=batch)
            opt = optimal_cores(profile, config)
            rows.append(
                (
                    label,
                    f"{kind} ({batch})",
                    opt,
                    f"{memory_bandwidth_demand(profile, config, opt):.1f}",
                )
            )
    print(
        render_table(
            ["config", "batch", "optimal cores", "bandwidth (GB/s)"],
            rows,
            title="\nFig. 5 / Fig. 6 view — optimum and bandwidth demand:",
        )
    )

    quiet = training_speed(profile, setup, best)
    rows = []
    for pressure in (0.5, 0.75, 0.85, 0.95, 1.0):
        state = ContentionState(node_bw_pressure=pressure)
        loud = training_speed(profile, setup, best, state)
        rows.append((f"{pressure:.2f}", f"{loud / quiet:.3f}"))
    print(
        render_table(
            ["node bandwidth pressure", "normalized performance"],
            rows,
            title="\nFig. 7 view — sensitivity to bandwidth contention:",
        )
    )
    print(f"\nKnown models: {', '.join(ALL_MODEL_NAMES)}")


if __name__ == "__main__":
    main()
