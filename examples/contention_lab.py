#!/usr/bin/env python3
"""Contention lab: watch the eliminator protect a training job (Sec. V-D).

One node, one contention-sensitive NLP trainer, one HEAT bandwidth hog.
The script runs the scene twice — eliminator off, then on — and prints a
timeline of node bandwidth pressure, the trainer's GPU utilization, and
the hog's MBA throttle level.

Run:  python examples/contention_lab.py
"""

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NodeConfig
from repro.core import CodaConfig, CodaScheduler, EliminatorConfig
from repro.experiments.runner import SimulationRunner
from repro.metrics.report import render_table
from repro.perfmodel.stages import TrainSetup
from repro.workload.heat import heat_job
from repro.workload.job import GpuJob


def run_scene(eliminator_enabled: bool):
    cluster = Cluster(
        ClusterConfig(
            node_groups=((1, NodeConfig(gpus=4, mem_bandwidth_gbps=110.0)),)
        )
    )
    scheduler = CodaScheduler(
        CodaConfig(eliminator=EliminatorConfig(enabled=eliminator_enabled))
    )
    runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
    runner.submit_at(
        0.0,
        GpuJob(
            job_id="trainer",
            tenant_id=1,
            submit_time=0.0,
            model_name="bat",
            setup=TrainSetup(1, 1),
            requested_cpus=5,
            total_iterations=600,
        ),
    )
    runner.submit_at(
        120.0, heat_job("heat", 120.0, threads=12, duration_s=1e6, tenant_id=18)
    )

    node = cluster.nodes[0]
    timeline = []
    for checkpoint in (60, 150, 240, 600, 1800, 3600):
        runner.engine.run(until=checkpoint)
        trainer_running = "trainer" in runner._running_gpu
        timeline.append(
            (
                f"{checkpoint}s",
                f"{node.bandwidth.pressure:.2f}",
                f"{runner.gpu_job_utilization('trainer'):.3f}"
                if trainer_running
                else "done",
                f"{node.mba.throttle_level('heat'):.1f}"
                if node.holds("heat")
                else "-",
            )
        )
    runner.engine.run(until=48 * 3600.0)
    finish = runner.collector.records["trainer"].processing_time
    return timeline, finish


def main() -> None:
    for enabled in (False, True):
        label = "ON" if enabled else "OFF"
        timeline, finish = run_scene(enabled)
        print(
            render_table(
                ["time", "node bw pressure", "trainer util", "heat throttle"],
                timeline,
                title=f"\nEliminator {label}:",
            )
        )
        print(f"Trainer total processing time: {finish:.0f} s")


if __name__ == "__main__":
    main()
