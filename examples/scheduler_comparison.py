#!/usr/bin/env python3
"""Compare FIFO, DRF, and CODA on the same multi-tenant trace.

A reduced-scale rerun of the paper's evaluation (Figs. 10-12, Sec. VI-C):
same cluster, same jobs, three policies — GPU utilization, active rate,
fragmentation, and queueing side by side.

Run:  python examples/scheduler_comparison.py [--paper-scale]
      (default: 20 nodes, half a day; --paper-scale: 80 nodes, one day)
"""

import sys

from repro import CodaScheduler, DrfScheduler, FifoScheduler
from repro.config import small_cluster
from repro.experiments.scenarios import (
    Scenario,
    paper_scale_scenario,
    run_scenario,
)
from repro.metrics.report import render_table
from repro.metrics.stats import fraction_at_most, fraction_exceeding
from repro.workload.job import JobKind
from repro.workload.tracegen import TraceConfig


def build_scenario(paper_scale: bool) -> Scenario:
    if paper_scale:
        return paper_scale_scenario(duration_days=1.0, seed=3)
    nodes = 20
    scale = nodes / 80.0
    return Scenario(
        cluster_config=small_cluster(nodes=nodes),
        trace_config=TraceConfig(
            duration_days=0.5,
            gpu_jobs_per_day=1250.0 * scale,
            cpu_jobs_per_day=3750.0 * scale,
            seed=3,
        ),
        drain_s=4 * 3600.0,
    )


def main() -> None:
    paper_scale = "--paper-scale" in sys.argv
    scenario = build_scenario(paper_scale)
    print(
        f"Cluster: {scenario.cluster_config.num_nodes} nodes / "
        f"{scenario.cluster_config.total_gpus} GPUs; trace: "
        f"{scenario.trace_config.duration_days:g} days, seed "
        f"{scenario.trace_config.seed}"
    )

    rows = []
    for factory in (FifoScheduler, DrfScheduler, CodaScheduler):
        result = run_scenario(scenario, factory())
        collector = result.collector
        gpu_queue = collector.queueing_times(
            JobKind.GPU, include_unstarted_until=result.horizon_s
        )
        cpu_queue = collector.queueing_times(
            JobKind.CPU, include_unstarted_until=result.horizon_s
        )
        tracker = collector.fragmentation
        rows.append(
            (
                result.scheduler_name,
                f"{collector.gpu_utilization.mean():.3f}",
                f"{collector.gpu_active_rate.mean():.3f}",
                f"{tracker.fragmentation_rate() * tracker.contended_fraction():.3f}",
                f"{fraction_exceeding(gpu_queue, 600.0):.3f}",
                f"{fraction_at_most(gpu_queue, 1.0):.3f}",
                f"{fraction_at_most(cpu_queue, 180.0):.3f}",
                result.finished_gpu_jobs,
            )
        )
        print(f"  {result.scheduler_name}: done "
              f"({result.events_fired} events)")

    print()
    print(
        render_table(
            [
                "policy",
                "gpu util",
                "active rate",
                "avg frag",
                "gpuQ >10min",
                "gpuQ none",
                "cpuQ <3min",
                "gpu jobs done",
            ],
            rows,
            title="FIFO vs DRF vs CODA (paper: Fig. 10-12, Sec. VI-C):",
        )
    )
    print(
        "\nPaper reference: utilization 45.4 / 44.7 / 62.1 %, "
        "fragmentation 14.3 / 14.6 / <1 %, 92.1 % of CODA's GPU jobs "
        "start without queueing."
    )


if __name__ == "__main__":
    main()
