#!/usr/bin/env python3
"""Quickstart: schedule a day of jobs on a small cluster with CODA.

Builds an 8-node GPU cluster, generates a quarter-day synthetic
multi-tenant trace (scaled to the cluster size), runs it under CODA, and
prints what happened — including what the adaptive allocator did to each
training job's core count.

Run:  python examples/quickstart.py
"""

from repro import CodaScheduler, SimulationRunner
from repro.experiments.scenarios import small_scenario
from repro.metrics.report import render_table
from repro.metrics.stats import fraction_at_most, mean
from repro.sim.clock import fmt_duration
from repro.workload.job import JobKind


def main() -> None:
    scenario = small_scenario(duration_days=0.25, nodes=8, seed=7)
    trace = scenario.build_trace()
    print(
        f"Trace: {len(trace.jobs)} jobs "
        f"({len(trace.gpu_jobs)} DNN training, {len(trace.cpu_jobs)} CPU) "
        f"over {fmt_duration(scenario.trace_config.duration_s)} "
        f"on {scenario.cluster_config.num_nodes} nodes / "
        f"{scenario.cluster_config.total_gpus} GPUs"
    )

    scheduler = CodaScheduler()
    runner = SimulationRunner(scenario.build_cluster(), scheduler, trace)
    result = runner.run(until=scenario.horizon_s)
    collector = result.collector

    print(
        f"\nFinished {result.finished_gpu_jobs} training jobs and "
        f"{result.finished_cpu_jobs} CPU jobs "
        f"({result.events_fired} simulation events)."
    )
    print(f"Mean GPU utilization (active GPUs): "
          f"{collector.gpu_utilization.mean():.1%}")
    gpu_queue = collector.queueing_times(JobKind.GPU)
    cpu_queue = collector.queueing_times(JobKind.CPU)
    print(f"Training jobs started without queueing: "
          f"{fraction_at_most(gpu_queue, 1.0):.1%}")
    print(f"CPU jobs started within 10 s: "
          f"{fraction_at_most(cpu_queue, 10.0):.1%}")

    rows = []
    for outcome in list(scheduler.allocator.outcomes.values())[:12]:
        rows.append(
            (
                outcome.job_id,
                outcome.model_name,
                outcome.requested_cpus,
                outcome.n_start,
                outcome.tuned_cores,
                outcome.profiling_steps,
            )
        )
    print()
    print(
        render_table(
            ["job", "model", "owner asked", "N_start", "tuned", "steps"],
            rows,
            title="Adaptive CPU allocation (first 12 tuned jobs):",
        )
    )
    adjustments = [
        outcome.tuned_cores - outcome.requested_cpus
        for outcome in scheduler.allocator.outcomes.values()
    ]
    if adjustments:
        print(f"\nMean core adjustment vs owner request: "
              f"{mean(adjustments):+.1f} cores")


if __name__ == "__main__":
    main()
