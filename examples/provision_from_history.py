#!/usr/bin/env python3
"""Size CODA's arrays from historical statistics (Sec. V-C).

The paper derives the GPU array's CPU reservation and the 4-GPU
sub-array's size "from historical statistical information".  This example
generates a month-style trace, treats its first week as history, derives
the provisioning, and runs CODA with the derived configuration against
the defaults on the remainder.

Run:  python examples/provision_from_history.py
"""

from repro.core import CodaConfig, CodaScheduler
from repro.core.provisioning import (
    optimal_cores_per_gpu,
    suggest_four_gpu_fraction,
    suggest_reservation,
)
from repro.experiments.scenarios import Scenario, run_scenario
from repro.config import small_cluster
from repro.metrics.report import render_table
from repro.metrics.stats import fraction_at_most, mean
from repro.workload.job import JobKind
from repro.workload.tracegen import TraceConfig, generate_trace


def main() -> None:
    nodes = 16
    scale = nodes / 80.0
    cluster_config = small_cluster(nodes=nodes)

    history = generate_trace(
        TraceConfig(
            duration_days=1.0,
            gpu_jobs_per_day=1250.0 * scale,
            cpu_jobs_per_day=3750.0 * scale,
            seed=41,
        )
    )
    per_gpu = optimal_cores_per_gpu(history.gpu_jobs)
    reserved = suggest_reservation(history.gpu_jobs, cluster_config)
    fraction = suggest_four_gpu_fraction(history.gpu_jobs)
    print(
        f"History: {len(history.gpu_jobs)} training jobs; mean optimal "
        f"demand {mean(per_gpu):.1f} cores/GPU"
    )
    print(
        f"Derived provisioning: reserve {reserved} cores/node for the GPU "
        f"array, dedicate {fraction:.0%} of GPUs to the 4-GPU sub-array\n"
    )

    scenario = Scenario(
        cluster_config=cluster_config,
        trace_config=TraceConfig(
            duration_days=0.5,
            gpu_jobs_per_day=1250.0 * scale,
            cpu_jobs_per_day=3750.0 * scale,
            seed=42,
        ),
        drain_s=4 * 3600.0,
    )

    rows = []
    for label, config in (
        ("defaults", CodaConfig()),
        (
            "provisioned",
            CodaConfig.provisioned_from(history.gpu_jobs, cluster_config),
        ),
    ):
        result = run_scenario(scenario, CodaScheduler(config))
        collector = result.collector
        gpu_queue = collector.queueing_times(
            JobKind.GPU, include_unstarted_until=result.horizon_s
        )
        cpu_queue = collector.queueing_times(
            JobKind.CPU, include_unstarted_until=result.horizon_s
        )
        rows.append(
            (
                label,
                config.reserved_cores,
                f"{config.four_gpu_fraction:.2f}",
                f"{collector.gpu_utilization.mean():.3f}",
                f"{fraction_at_most(gpu_queue, 1.0):.3f}",
                f"{fraction_at_most(cpu_queue, 180.0):.3f}",
            )
        )
    print(
        render_table(
            [
                "config",
                "reserved",
                "4-GPU frac",
                "gpu util",
                "gpu no-queue",
                "cpu <=3min",
            ],
            rows,
            title="Default vs history-provisioned CODA:",
        )
    )


if __name__ == "__main__":
    main()
